//! Ensemble-level run state: manifests and resumable sessions.
//!
//! Sequential ensemble methods (EDDE, boosting, BANs) train members one at
//! a time for hours; a kill at member five used to throw away members one
//! through four. A [`RunSession`] persists, after every completed member, a
//! [`RunManifest`] (member labels, `α_t`, per-member RNG seeds, sample
//! weights `W_t`, trace data) plus each member's network into a
//! [`CheckpointStore`]. Re-running the same method on the same store
//! restores the completed prefix bit-exactly and continues training from
//! the first missing member, producing the same ensemble an uninterrupted
//! run would have.
//!
//! Two ingredients make the equivalence exact:
//!
//! * **Per-member RNG streams.** Resumable runs derive an independent seed
//!   per member ([`member_seed`]) instead of threading one stream through
//!   the whole pipeline, so member `t`'s randomness does not depend on
//!   having *executed* members `1..t-1`. (Plain [`run`] keeps the legacy
//!   shared stream — [`RngPlan`] switches between the two.)
//! * **Exact f32 round-trips.** Parameters are serialized as little-endian
//!   `f32` bit patterns, so a restored network is bit-identical to the one
//!   that was saved.
//!
//! A manifest is bound to a configuration [`fingerprint`]; resuming with a
//! different method, config, seed, or dataset shape is refused rather than
//! silently producing a franken-ensemble.
//!
//! [`run`]: crate::methods::EnsembleMethod::run

use crate::env::ExperimentEnv;
use crate::error::{EnsembleError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use edde_nn::checkpoint::{self, CheckpointStore};
use edde_nn::Network;
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Store key of the run manifest.
pub const MANIFEST_KEY: &str = "manifest";

/// Legacy manifest payload magic: pre-epoch-checkpoint runs whose members
/// trained by threading one derived stream through all their epochs.
const MAGIC_V1: &[u8; 4] = b"EDM1";

/// Current manifest payload magic (the payload is additionally sealed in
/// an `EDC2` checksummed frame). Adds the [`RunProtocol`] byte; `EDM1`
/// manifests still decode, as [`RunProtocol::Legacy`].
const MAGIC: &[u8; 4] = b"EDM2";

/// Progress-record payload magic (sealed in an `EDC2` frame like the
/// manifest).
const PROGRESS_MAGIC: &[u8; 4] = b"EDP1";

/// How a run's members consume randomness while training — recorded in the
/// manifest so a resumed run replays the exact protocol the original used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunProtocol {
    /// Pre-`EDM2` behavior: member `t` trains by threading the single
    /// stream seeded from [`member_seed`] through all of its epochs. The
    /// stream state after epoch `e` depends on having executed epochs
    /// `0..e`, so resume granularity is one whole member.
    Legacy,
    /// Epoch-derived streams: epoch `e` of member `t` draws from a fresh
    /// stream seeded with [`epoch_seed`]`(member_seed, e)`. Any epoch's
    /// randomness is reconstructible from `(seed, e)` alone, which is what
    /// makes mid-member [`MemberProgress`] checkpoints bit-exact.
    PerEpoch,
}

impl RunProtocol {
    fn to_byte(self) -> u8 {
        match self {
            RunProtocol::Legacy => 1,
            RunProtocol::PerEpoch => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self> {
        match b {
            1 => Ok(RunProtocol::Legacy),
            2 => Ok(RunProtocol::PerEpoch),
            other => Err(corrupt(&format!("unknown run protocol {other}"))),
        }
    }
}

/// Everything needed to restore one completed ensemble member.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberRecord {
    /// Display label, e.g. `"edde-3"`.
    pub label: String,
    /// Ensemble weight `α_t`.
    pub alpha: f32,
    /// The member's RNG seed (from [`member_seed`]); recorded for
    /// diagnostics and so a resumed run can prove stream independence.
    pub seed: u64,
    /// Store key of the serialized network. Assigned by
    /// [`RunSession::record_member`]; pass an empty string when building
    /// the record.
    pub net_key: String,
    /// Total training epochs spent up to and including this member.
    pub cumulative_epochs: usize,
    /// Ensemble test accuracy after this member was added (the trace
    /// point), so restoring does not re-evaluate.
    pub test_accuracy: f32,
    /// Sample-weight vector `W_t` *after* this member's update — the state
    /// the next round trains with. Empty for unweighted methods.
    pub weights: Vec<f32>,
}

/// The persisted state of one ensemble run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Method display name the run belongs to.
    pub method: String,
    /// Configuration fingerprint the run is bound to.
    pub fingerprint: u64,
    /// The RNG protocol the run's members train under.
    pub protocol: RunProtocol,
    /// Completed members, in training order.
    pub members: Vec<MemberRecord>,
    /// Canonical [`crate::env::EddeConfig::snapshot`] of the knob layer at the time the
    /// run was started — provenance only. It is deliberately *not* part of
    /// the configuration fingerprint: knobs never affect results (batching
    /// and backend selection are bit-identical), so resuming under
    /// different knob settings is legal. Empty for manifests written
    /// before the runtime-config layer existed.
    pub config_snapshot: String,
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(corrupt("truncated string length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(corrupt("truncated string"));
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|e| corrupt(&format!("string not utf-8: {e}")))
}

fn corrupt(msg: &str) -> EnsembleError {
    EnsembleError::Checkpoint(format!("corrupt manifest: {msg}"))
}

impl RunManifest {
    /// Serializes the manifest payload (unsealed). Always writes the
    /// current `EDM2` format; the recorded [`RunProtocol`] preserves the
    /// semantics of runs begun under the legacy `EDM1` format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u64_le(self.fingerprint);
        buf.put_u8(self.protocol.to_byte());
        put_str(&mut buf, &self.method);
        buf.put_u32_le(self.members.len() as u32);
        for m in &self.members {
            put_str(&mut buf, &m.label);
            buf.put_f32_le(m.alpha);
            buf.put_u64_le(m.seed);
            put_str(&mut buf, &m.net_key);
            buf.put_u64_le(m.cumulative_epochs as u64);
            buf.put_f32_le(m.test_accuracy);
            buf.put_u32_le(m.weights.len() as u32);
            for &w in &m.weights {
                buf.put_f32_le(w);
            }
        }
        put_str(&mut buf, &self.config_snapshot);
        buf.freeze()
    }

    /// Deserializes a manifest payload — the current `EDM2` format or the
    /// legacy `EDM1` one (which maps to [`RunProtocol::Legacy`]).
    pub fn decode(mut buf: Bytes) -> Result<Self> {
        if buf.remaining() < 12 {
            return Err(corrupt("truncated header"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC && &magic != MAGIC_V1 {
            return Err(corrupt(&format!("bad magic {magic:?}")));
        }
        let fingerprint = buf.get_u64_le();
        let protocol = if &magic == MAGIC_V1 {
            RunProtocol::Legacy
        } else {
            if buf.remaining() < 1 {
                return Err(corrupt("truncated protocol byte"));
            }
            RunProtocol::from_byte(buf.get_u8())?
        };
        let method = get_str(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(corrupt("truncated member count"));
        }
        let count = buf.get_u32_le() as usize;
        let mut members = Vec::with_capacity(count.min(buf.remaining() / 29));
        for _ in 0..count {
            let label = get_str(&mut buf)?;
            if buf.remaining() < 12 {
                return Err(corrupt("truncated member"));
            }
            let alpha = buf.get_f32_le();
            let seed = buf.get_u64_le();
            let net_key = get_str(&mut buf)?;
            if buf.remaining() < 16 {
                return Err(corrupt("truncated member tail"));
            }
            let cumulative_epochs = buf.get_u64_le() as usize;
            let test_accuracy = buf.get_f32_le();
            let n_weights = buf.get_u32_le() as usize;
            if buf.remaining() < n_weights.saturating_mul(4) {
                return Err(corrupt("truncated weights"));
            }
            let mut weights = Vec::with_capacity(n_weights);
            for _ in 0..n_weights {
                weights.push(buf.get_f32_le());
            }
            members.push(MemberRecord {
                label,
                alpha,
                seed,
                net_key,
                cumulative_epochs,
                test_accuracy,
                weights,
            });
        }
        // Optional trailing config snapshot. Payloads written before the
        // runtime-config layer end exactly at the members block — on both
        // the `EDM1` and `EDM2` paths — and decode to an empty snapshot.
        let config_snapshot = if buf.remaining() > 0 {
            get_str(&mut buf)?
        } else {
            String::new()
        };
        Ok(RunManifest {
            method,
            fingerprint,
            protocol,
            members,
            config_snapshot,
        })
    }
}

/// FNV-1a over all parts, with a separator folded in between them so
/// `["ab", "c"]` and `["a", "bc"]` hash differently.
pub fn fingerprint(parts: &[&str]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for part in parts {
        for &b in part.as_bytes() {
            eat(b);
        }
        eat(0x1F); // unit separator
    }
    h
}

/// The configuration fingerprint a resumable run is bound to: method name,
/// full config (via `Debug`), master seed, and dataset shape. Anything that
/// would change the trained ensemble must feed in here.
pub fn env_fingerprint(method: &str, config_debug: &str, env: &ExperimentEnv) -> u64 {
    fingerprint(&[
        method,
        config_debug,
        &env.seed.to_string(),
        &env.base_lr.to_string(),
        &format!("{:?}", env.data.train.features().dims()),
        &env.data.train.num_classes().to_string(),
    ])
}

/// Member `t`'s independent training stream: a [`StdRng`] seeded from
/// [`member_seed`]. Data-independent methods use this to train members in
/// any order (including concurrently) while producing the exact draws a
/// sequential loop over `start_member(t)` would.
pub fn member_rng(env_seed: u64, salt: u64, t: usize) -> StdRng {
    StdRng::seed_from_u64(member_seed(env_seed, salt, t))
}

/// Derives member `t`'s independent RNG seed (splitmix64 finalizer over the
/// master seed, the method salt, and the member index).
pub fn member_seed(env_seed: u64, salt: u64, t: usize) -> u64 {
    let mut z = env_seed ^ salt.rotate_left(32) ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives epoch `epoch`'s independent stream seed within the member
/// stream rooted at `member_root` (itself a [`member_seed`]). This is the
/// [`RunProtocol::PerEpoch`] derivation: because each epoch's stream is a
/// pure function of `(member_root, epoch)`, the "RNG state" a mid-member
/// checkpoint must persist collapses to the root seed plus the epoch
/// index. The folded constant keeps epoch streams disjoint from the member
/// stream itself and from other members' epochs.
pub fn epoch_seed(member_root: u64, epoch: usize) -> u64 {
    let mut z = member_root
        ^ 0xE50C_5EED_0000_0001u64.rotate_left(17)
        ^ (epoch as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

enum RngMode {
    /// Legacy behavior: one stream threaded through the whole pipeline.
    /// Bit-identical to the pre-resume implementation.
    Shared,
    /// Resumable behavior: each member gets its own derived stream.
    PerMember { env_seed: u64, salt: u64 },
}

/// Switches a method's training loop between the legacy shared RNG stream
/// and resume-friendly per-member streams without duplicating the loop.
pub struct RngPlan {
    mode: RngMode,
    current: StdRng,
}

impl RngPlan {
    /// The legacy single shared stream (plain, non-resumable runs).
    pub fn shared(rng: StdRng) -> Self {
        RngPlan {
            mode: RngMode::Shared,
            current: rng,
        }
    }

    /// Independent per-member streams (resumable runs).
    pub fn per_member(env_seed: u64, salt: u64) -> Self {
        RngPlan {
            mode: RngMode::PerMember { env_seed, salt },
            current: StdRng::seed_from_u64(member_seed(env_seed, salt, 0)),
        }
    }

    /// Positions the plan at member `t` (0-based). A per-member plan resets
    /// to the member's derived stream; a shared plan keeps its stream.
    pub fn start_member(&mut self, t: usize) {
        if let RngMode::PerMember { env_seed, salt } = self.mode {
            self.current = StdRng::seed_from_u64(member_seed(env_seed, salt, t));
        }
    }

    /// The active stream.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.current
    }

    /// The seed recorded for member `t` (0 in shared mode, where no single
    /// seed describes the stream).
    pub fn seed_for(&self, t: usize) -> u64 {
        match self.mode {
            RngMode::Shared => 0,
            RngMode::PerMember { env_seed, salt } => member_seed(env_seed, salt, t),
        }
    }
}

/// Borrowed view of an in-flight member's epoch-boundary state, written by
/// the training loop without cloning the (potentially large) model state.
pub struct ProgressParts<'a> {
    /// Member index the progress belongs to.
    pub member: usize,
    /// Configuration fingerprint of the owning run.
    pub fingerprint: u64,
    /// The member's RNG root seed ([`member_seed`]); epochs derive their
    /// streams from it via [`epoch_seed`].
    pub rng_seed: u64,
    /// The member's total epoch budget.
    pub total_epochs: usize,
    /// Completed epochs — training resumes at this epoch index.
    pub epochs_done: usize,
    /// Divergence rollbacks performed so far.
    pub rollbacks: usize,
    /// Remaining divergence-retry budget.
    pub retries_left: usize,
    /// Current learning-rate backoff scale.
    pub lr_scale: f32,
    /// Mean loss of the last completed epoch.
    pub final_loss: f32,
    /// Model state at the epoch boundary (params then buffers).
    pub net_state: &'a [(String, Tensor)],
    /// Serialized optimizer momentum ([`edde_nn::optim::Sgd::export_state`]).
    pub opt_state: &'a [u8],
}

/// A decoded mid-member progress record: everything needed to resume a
/// partially trained member at an epoch boundary, bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberProgress {
    /// Member index the progress belongs to.
    pub member: usize,
    /// Configuration fingerprint of the owning run.
    pub fingerprint: u64,
    /// The member's RNG root seed.
    pub rng_seed: u64,
    /// The member's total epoch budget.
    pub total_epochs: usize,
    /// Completed epochs — training resumes at this epoch index.
    pub epochs_done: usize,
    /// Divergence rollbacks performed so far.
    pub rollbacks: usize,
    /// Remaining divergence-retry budget.
    pub retries_left: usize,
    /// Current learning-rate backoff scale.
    pub lr_scale: f32,
    /// Mean loss of the last completed epoch.
    pub final_loss: f32,
    /// Model state at the epoch boundary.
    pub net_state: Vec<(String, Tensor)>,
    /// Serialized optimizer momentum.
    pub opt_state: Bytes,
}

/// Serializes a progress record (unsealed payload; callers seal it in an
/// `EDC2` frame, normally via [`checkpoint::put_sealed_relaxed`] — the
/// record is advisory and rewritten every boundary, so it trades the
/// per-epoch fsync for a checksum-detectable torn write on crash).
pub fn encode_progress(p: &ProgressParts<'_>) -> Bytes {
    let net = edde_tensor::serialize::encode_params(p.net_state);
    let mut buf = BytesMut::with_capacity(64 + net.len() + p.opt_state.len());
    buf.put_slice(PROGRESS_MAGIC);
    buf.put_u64_le(p.member as u64);
    buf.put_u64_le(p.fingerprint);
    buf.put_u64_le(p.rng_seed);
    buf.put_u64_le(p.total_epochs as u64);
    buf.put_u64_le(p.epochs_done as u64);
    buf.put_u64_le(p.rollbacks as u64);
    buf.put_u64_le(p.retries_left as u64);
    buf.put_f32_le(p.lr_scale);
    buf.put_f32_le(p.final_loss);
    buf.put_u64_le(net.len() as u64);
    buf.put_slice(&net);
    buf.put_u64_le(p.opt_state.len() as u64);
    buf.put_slice(p.opt_state);
    buf.freeze()
}

impl MemberProgress {
    /// Deserializes a payload written by [`encode_progress`].
    pub fn decode(mut buf: Bytes) -> Result<Self> {
        let corrupt_p =
            |msg: &str| EnsembleError::Checkpoint(format!("corrupt member progress: {msg}"));
        if buf.remaining() < 4 + 7 * 8 + 2 * 4 {
            return Err(corrupt_p("truncated header"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != PROGRESS_MAGIC {
            return Err(corrupt_p(&format!("bad magic {magic:?}")));
        }
        let member = buf.get_u64_le() as usize;
        let fingerprint = buf.get_u64_le();
        let rng_seed = buf.get_u64_le();
        let total_epochs = buf.get_u64_le() as usize;
        let epochs_done = buf.get_u64_le() as usize;
        let rollbacks = buf.get_u64_le() as usize;
        let retries_left = buf.get_u64_le() as usize;
        let lr_scale = buf.get_f32_le();
        let final_loss = buf.get_f32_le();
        let take_blob = |what: &str, buf: &mut Bytes| -> Result<Bytes> {
            if buf.remaining() < 8 {
                return Err(corrupt_p(&format!("truncated {what} length")));
            }
            let len = buf.get_u64_le() as usize;
            if buf.remaining() < len {
                return Err(corrupt_p(&format!("truncated {what}")));
            }
            let blob = buf.slice(..len);
            *buf = buf.slice(len..);
            Ok(blob)
        };
        let net_blob = take_blob("model state", &mut buf)?;
        let opt_state = take_blob("optimizer state", &mut buf)?;
        let net_state = edde_tensor::serialize::decode_params(net_blob)
            .map_err(|e| corrupt_p(&format!("model state: {e}")))?;
        Ok(MemberProgress {
            member,
            fingerprint,
            rng_seed,
            total_epochs,
            epochs_done,
            rollbacks,
            retries_left,
            lr_scale,
            final_loss,
            net_state,
            opt_state,
        })
    }

    /// Refuses a progress record that does not belong to the resuming
    /// member — a different member index, configuration, RNG root, or
    /// epoch budget means the record describes some other training run.
    pub fn validate_binding(
        &self,
        member: usize,
        fingerprint: u64,
        rng_seed: u64,
        total_epochs: usize,
    ) -> Result<()> {
        let refuse = |what: &str, stored: u64, current: u64| {
            Err(EnsembleError::Checkpoint(format!(
                "member progress {what} mismatch: stored {stored:#x}, current {current:#x}"
            )))
        };
        if self.member != member {
            return refuse("member index", self.member as u64, member as u64);
        }
        if self.fingerprint != fingerprint {
            return refuse("fingerprint", self.fingerprint, fingerprint);
        }
        if self.rng_seed != rng_seed {
            return refuse("rng seed", self.rng_seed, rng_seed);
        }
        if self.total_epochs != total_epochs {
            return refuse(
                "epoch budget",
                self.total_epochs as u64,
                total_epochs as u64,
            );
        }
        if self.epochs_done > self.total_epochs {
            return Err(EnsembleError::Checkpoint(format!(
                "member progress claims {} of {} epochs done",
                self.epochs_done, self.total_epochs
            )));
        }
        Ok(())
    }
}

/// An open resumable run bound to one store and one configuration.
pub struct RunSession<'a> {
    store: &'a dyn CheckpointStore,
    manifest: RunManifest,
}

impl std::fmt::Debug for RunSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunSession")
            .field("manifest", &self.manifest)
            .finish_non_exhaustive()
    }
}

impl<'a> RunSession<'a> {
    /// Opens a session on `store`. If the store holds a manifest it must
    /// match `method` and `fingerprint` (otherwise the resume is refused);
    /// an empty store starts a fresh run.
    pub fn open(store: &'a dyn CheckpointStore, method: &str, fingerprint: u64) -> Result<Self> {
        let manifest = if store.contains(MANIFEST_KEY) {
            let sealed = store.get(MANIFEST_KEY)?;
            let payload = checkpoint::unseal(sealed)?;
            let manifest = RunManifest::decode(payload)?;
            if manifest.method != method {
                return Err(EnsembleError::Checkpoint(format!(
                    "store holds a run of {:?}, refusing to resume {method:?}",
                    manifest.method
                )));
            }
            if manifest.fingerprint != fingerprint {
                return Err(EnsembleError::Checkpoint(format!(
                    "configuration fingerprint mismatch: manifest {:#018x}, current {fingerprint:#018x} \
                     (method config, seed, or dataset changed since the run was started)",
                    manifest.fingerprint
                )));
            }
            manifest
        } else {
            RunManifest {
                method: method.to_string(),
                fingerprint,
                protocol: RunProtocol::PerEpoch,
                members: Vec::new(),
                // Provenance: the resolved knob layer at run start.
                config_snapshot: crate::env::EddeConfig::from_env().snapshot(),
            }
        };
        let session = RunSession { store, manifest };
        session.collect_garbage();
        Ok(session)
    }

    /// Deletes `member-*` keys the manifest does not reference. A crash
    /// between [`RunSession::record_member`]'s network write and its
    /// manifest write leaves such an orphan behind; the next member would
    /// overwrite it anyway (keys are `member-{index}`), but collecting it
    /// here keeps the store's contents equal to the manifest's view and
    /// reclaims the space immediately.
    ///
    /// Mid-member progress keys (`member-{t}-progress`) are collected when
    /// they are *stale* — member `t` is already committed to the manifest,
    /// so its epoch-boundary record (left by a crash between the epoch
    /// write and the manifest update, or by a write-failure abort) can
    /// never be resumed again. Progress for members at or past the commit
    /// frontier is live in-flight state and survives.
    ///
    /// Sharded progress records extend the same rule to chunk granularity:
    /// a chunk key `member-{t}-chunk-{part}-{chunk}` survives only when
    /// member `t` is at or past the commit frontier **and** the progress
    /// record at `t`'s progress key decodes to an `EDS1` index that
    /// actually references that `(part, chunk)` slot. Everything else — a
    /// completed member's chunks, chunks from a killed write whose index
    /// never landed, chunks beyond a shrunk index's grid, and stray
    /// `member-{t}-index` records (sharded *bundles* belong in their own
    /// store, not a session store) — is swept. GC failures are
    /// deliberately ignored — a leftover orphan is harmless, refusing to
    /// resume over one is not.
    fn collect_garbage(&self) {
        use edde_nn::chunkstore::{self, ChunkIndex};
        let referenced: std::collections::HashSet<&str> = self
            .manifest
            .members
            .iter()
            .map(|m| m.net_key.as_str())
            .collect();
        let completed = self.manifest.members.len();
        let Ok(keys) = self.store.keys() else {
            return;
        };
        // Per-member decode of the live sharded index (None = whole-blob
        // record, torn record, or no record), computed once per member.
        let mut indexes: std::collections::HashMap<usize, Option<ChunkIndex>> =
            std::collections::HashMap::new();
        for key in keys {
            if !key.starts_with("member-") || referenced.contains(key.as_str()) {
                continue;
            }
            if let Some(t) = progress_key_member(&key) {
                if t >= completed {
                    continue; // live in-flight progress
                }
            }
            if let Some((t, part, chunk)) = chunkstore::parse_chunk_key(&key) {
                if t >= completed {
                    let index = indexes.entry(t).or_insert_with(|| {
                        checkpoint::get_sealed(self.store, &Self::progress_key(t))
                            .ok()
                            .filter(|p| p.len() >= 4 && &p[..4] == chunkstore::INDEX_MAGIC)
                            .and_then(|p| ChunkIndex::decode(p).ok())
                    });
                    let live = index.as_ref().is_some_and(|ix| {
                        ix.parts
                            .get(part)
                            .is_some_and(|pm| (chunk as u64) < u64::from(pm.chunks))
                    });
                    if live {
                        continue; // referenced by the in-flight index
                    }
                }
            }
            let _ = self.store.remove(&key);
        }
    }

    /// Completed members in the store.
    pub fn completed(&self) -> usize {
        self.manifest.members.len()
    }

    /// The backing store. The returned borrow carries the *store's*
    /// lifetime, not the session's, so trainer-side progress writers can
    /// hold it while the session is mutably borrowed elsewhere (e.g. by
    /// the commit closure of a parallel member run).
    pub fn store(&self) -> &'a dyn CheckpointStore {
        self.store
    }

    /// The configuration fingerprint this run is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.manifest.fingerprint
    }

    /// The RNG protocol this run's members train under. Fresh sessions are
    /// [`RunProtocol::PerEpoch`]; sessions resumed from a legacy `EDM1`
    /// manifest stay [`RunProtocol::Legacy`] so the remaining members
    /// reproduce the draws the original run would have made.
    pub fn protocol(&self) -> RunProtocol {
        self.manifest.protocol
    }

    /// Store key of member `t`'s in-flight progress record. Flat (no `/`):
    /// [`edde_nn::checkpoint::FsStore`] keys must be single path
    /// components.
    pub fn progress_key(t: usize) -> String {
        format!("member-{t}-progress")
    }

    /// The completed member records, in training order.
    pub fn members(&self) -> &[MemberRecord] {
        &self.manifest.members
    }

    /// Restores member `t`'s network state into an architecture-compatible
    /// network (typically fresh from the env's factory).
    pub fn restore_network(&self, t: usize, net: &mut Network) -> Result<()> {
        let rec = self.manifest.members.get(t).ok_or_else(|| {
            EnsembleError::Checkpoint(format!("no completed member {t} to restore"))
        })?;
        checkpoint::load_from_store(self.store, &rec.net_key, net)?;
        Ok(())
    }

    /// Persists a just-trained member: saves its network under a fresh key,
    /// appends the record, and rewrites the manifest. `record.net_key` is
    /// assigned here. The network is saved before the manifest references
    /// it, so a crash between the two writes leaves at worst an orphaned
    /// network — never a manifest pointing at a missing one.
    pub fn record_member(&mut self, mut record: MemberRecord, net: &mut Network) -> Result<()> {
        let key = format!("member-{}", self.manifest.members.len());
        checkpoint::save_to_store(self.store, &key, net)?;
        record.net_key = key;
        self.manifest.members.push(record);
        let sealed = checkpoint::seal(&self.manifest.encode());
        if let Err(e) = self.store.put(MANIFEST_KEY, &sealed) {
            // Keep the in-memory view consistent with the store.
            self.manifest.members.pop();
            return Err(e.into());
        }
        // The member is committed; its epoch-boundary progress is now
        // stale. Best-effort removal — open()'s GC collects survivors.
        let _ = self
            .store
            .remove(&Self::progress_key(self.manifest.members.len() - 1));
        Ok(())
    }
}

/// Parses the member index out of a `member-{t}-progress` key; `None` for
/// any other key shape.
fn progress_key_member(key: &str) -> Option<usize> {
    key.strip_prefix("member-")?
        .strip_suffix("-progress")?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EddeConfig;
    use edde_nn::checkpoint::MemStore;
    use edde_nn::models::mlp;
    use edde_nn::Mode;
    use edde_tensor::Tensor;

    fn sample_manifest() -> RunManifest {
        RunManifest {
            method: "EDDE".into(),
            fingerprint: 0xDEAD_BEEF_1234_5678,
            protocol: RunProtocol::PerEpoch,
            members: vec![
                MemberRecord {
                    label: "edde-1".into(),
                    alpha: 1.25,
                    seed: 42,
                    net_key: "member-0".into(),
                    cumulative_epochs: 10,
                    test_accuracy: 0.83,
                    weights: vec![1.0, 0.5, 1.5],
                },
                MemberRecord {
                    label: "edde-2".into(),
                    alpha: 0.75,
                    seed: 43,
                    net_key: "member-1".into(),
                    cumulative_epochs: 16,
                    test_accuracy: 0.87,
                    weights: vec![],
                },
            ],
            config_snapshot: EddeConfig::default().snapshot(),
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample_manifest();
        let back = RunManifest::decode(m.encode()).unwrap();
        assert_eq!(back, m);
        let mut legacy = sample_manifest();
        legacy.protocol = RunProtocol::Legacy;
        assert_eq!(RunManifest::decode(legacy.encode()).unwrap(), legacy);
    }

    #[test]
    fn legacy_edm1_manifest_still_decodes() {
        // Re-encode a sample manifest in the EDM1 layout by hand (the old
        // encoder: magic, fingerprint, method, members — no protocol byte)
        // and check it reads back as a Legacy-protocol run.
        let m = sample_manifest();
        let v2 = m.encode();
        let mut v1 = BytesMut::new();
        v1.put_slice(MAGIC_V1);
        v1.put_u64_le(m.fingerprint);
        // skip magic (4) + fingerprint (8) + protocol (1) of the v2 bytes
        v1.put_slice(&v2[13..]);
        let back = RunManifest::decode(v1.freeze()).unwrap();
        assert_eq!(back.protocol, RunProtocol::Legacy);
        assert_eq!(back.method, m.method);
        assert_eq!(back.members, m.members);
        assert_eq!(back.config_snapshot, m.config_snapshot);
    }

    #[test]
    fn pre_snapshot_manifest_decodes_with_empty_snapshot() {
        // Manifests written before the runtime-config layer end right
        // after the members block; the trailing snapshot is optional.
        let m = sample_manifest();
        let v2 = m.encode();
        let tail = 4 + m.config_snapshot.len();
        let old = v2.slice(0..v2.len() - tail);
        let back = RunManifest::decode(old).unwrap();
        assert_eq!(back.members, m.members);
        assert_eq!(back.config_snapshot, "");
    }

    #[test]
    fn epoch_seeds_differ_across_epochs_and_members() {
        let root = member_seed(7, 0xEDDE, 3);
        let a = epoch_seed(root, 0);
        let b = epoch_seed(root, 1);
        let c = epoch_seed(member_seed(7, 0xEDDE, 4), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, root, "epoch stream must not alias the member stream");
        assert_eq!(a, epoch_seed(root, 0));
    }

    #[test]
    fn member_progress_round_trips_and_validates() {
        let state = vec![
            (
                "l1.w".to_string(),
                Tensor::from_vec(vec![1.5, -2.25], &[2]).unwrap(),
            ),
            ("l1.b".to_string(), Tensor::zeros(&[2])),
        ];
        let opt = vec![9u8, 8, 7];
        let payload = encode_progress(&ProgressParts {
            member: 3,
            fingerprint: 0xABCD,
            rng_seed: 42,
            total_epochs: 10,
            epochs_done: 4,
            rollbacks: 1,
            retries_left: 1,
            lr_scale: 0.5,
            final_loss: 0.125,
            net_state: &state,
            opt_state: &opt,
        });
        let p = MemberProgress::decode(payload.clone()).unwrap();
        assert_eq!(p.member, 3);
        assert_eq!(p.epochs_done, 4);
        assert_eq!(p.net_state, state);
        assert_eq!(&p.opt_state[..], &opt[..]);
        p.validate_binding(3, 0xABCD, 42, 10).unwrap();
        assert!(p.validate_binding(2, 0xABCD, 42, 10).is_err());
        assert!(p.validate_binding(3, 0xABCE, 42, 10).is_err());
        assert!(p.validate_binding(3, 0xABCD, 43, 10).is_err());
        assert!(p.validate_binding(3, 0xABCD, 42, 11).is_err());
        // truncations are detected
        for cut in [0, 3, 20, payload.len() / 2, payload.len() - 1] {
            assert!(
                MemberProgress::decode(payload.slice(0..cut)).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn progress_key_parsing() {
        assert_eq!(progress_key_member("member-0-progress"), Some(0));
        assert_eq!(progress_key_member("member-17-progress"), Some(17));
        assert_eq!(progress_key_member("member-17"), None);
        assert_eq!(progress_key_member("member-x-progress"), None);
        assert_eq!(progress_key_member("manifest"), None);
        assert_eq!(RunSession::progress_key(5), "member-5-progress");
    }

    #[test]
    fn truncated_manifest_is_rejected() {
        let bytes = sample_manifest().encode();
        for cut in [0, 3, 11, bytes.len() / 2, bytes.len() - 1] {
            let err = RunManifest::decode(bytes.slice(0..cut)).unwrap_err();
            assert!(
                matches!(err, EnsembleError::Checkpoint(_)),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn fingerprints_separate_parts_and_configs() {
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert_eq!(fingerprint(&["x", "y"]), fingerprint(&["x", "y"]));
    }

    #[test]
    fn member_seeds_differ_across_members_and_salts() {
        let a = member_seed(7, 0xEDDE, 0);
        let b = member_seed(7, 0xEDDE, 1);
        let c = member_seed(7, 0xBA, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, member_seed(7, 0xEDDE, 0));
    }

    #[test]
    fn session_records_and_restores_members() {
        let store = MemStore::new();
        let mut r = StdRng::seed_from_u64(3);
        let mut net = mlp(&[4, 8, 2], 0.0, &mut r);
        {
            let mut sess = RunSession::open(&store, "Bagging", 99).unwrap();
            assert_eq!(sess.completed(), 0);
            sess.record_member(
                MemberRecord {
                    label: "bagging-0".into(),
                    alpha: 1.0,
                    seed: 5,
                    net_key: String::new(),
                    cumulative_epochs: 8,
                    test_accuracy: 0.8,
                    weights: vec![],
                },
                &mut net,
            )
            .unwrap();
        }
        // Reopen (a fresh process) and restore.
        let sess = RunSession::open(&store, "Bagging", 99).unwrap();
        assert_eq!(sess.completed(), 1);
        assert_eq!(sess.members()[0].net_key, "member-0");
        let mut restored = mlp(&[4, 8, 2], 0.0, &mut r);
        sess.restore_network(0, &mut restored).unwrap();
        let x = Tensor::ones(&[2, 4]);
        assert_eq!(
            net.train_forward(&x, Mode::Eval).unwrap().data(),
            restored.train_forward(&x, Mode::Eval).unwrap().data()
        );
        assert!(sess.restore_network(1, &mut restored).is_err());
    }

    #[test]
    fn open_collects_orphaned_member_keys() {
        let store = MemStore::new();
        let mut r = StdRng::seed_from_u64(6);
        let mut net = mlp(&[4, 8, 2], 0.0, &mut r);
        let mut sess = RunSession::open(&store, "EDDE", 7).unwrap();
        sess.record_member(
            MemberRecord {
                label: "edde-1".into(),
                alpha: 1.0,
                seed: 0,
                net_key: String::new(),
                cumulative_epochs: 1,
                test_accuracy: 0.5,
                weights: vec![],
            },
            &mut net,
        )
        .unwrap();
        drop(sess);
        // Simulate a crash after the member-1 network write but before the
        // manifest write: the store holds an unreferenced network.
        store.put("member-1", b"orphaned network bytes").unwrap();
        // Unrelated keys must survive GC.
        store.put("notes", b"keep me").unwrap();
        let sess = RunSession::open(&store, "EDDE", 7).unwrap();
        assert_eq!(sess.completed(), 1);
        assert!(store.contains("member-0"), "referenced key must survive");
        assert!(!store.contains("member-1"), "orphan must be collected");
        assert!(store.contains("notes"), "non-member key must survive");
    }

    #[test]
    fn open_collects_stale_progress_but_keeps_in_flight_progress() {
        let store = MemStore::new();
        let mut r = StdRng::seed_from_u64(8);
        let mut net = mlp(&[4, 8, 2], 0.0, &mut r);
        let mut sess = RunSession::open(&store, "EDDE", 7).unwrap();
        sess.record_member(
            MemberRecord {
                label: "edde-1".into(),
                alpha: 1.0,
                seed: 0,
                net_key: String::new(),
                cumulative_epochs: 1,
                test_accuracy: 0.5,
                weights: vec![],
            },
            &mut net,
        )
        .unwrap();
        drop(sess);
        // Member 0 is committed: its progress record (here simulating a
        // crash between an epoch write and the manifest update) is stale.
        // Member 1 is still in flight: its progress must survive GC.
        store.put("member-0-progress", b"stale").unwrap();
        store.put("member-1-progress", b"in flight").unwrap();
        let sess = RunSession::open(&store, "EDDE", 7).unwrap();
        assert_eq!(sess.completed(), 1);
        assert!(
            !store.contains("member-0-progress"),
            "committed member's progress must be collected"
        );
        assert!(
            store.contains("member-1-progress"),
            "in-flight progress must survive"
        );
    }

    #[test]
    fn record_member_removes_its_progress_record() {
        let store = MemStore::new();
        let mut r = StdRng::seed_from_u64(9);
        let mut net = mlp(&[4, 8, 2], 0.0, &mut r);
        let mut sess = RunSession::open(&store, "Bagging", 3).unwrap();
        store.put("member-0-progress", b"mid-member state").unwrap();
        sess.record_member(
            MemberRecord {
                label: "bagging-0".into(),
                alpha: 1.0,
                seed: 0,
                net_key: String::new(),
                cumulative_epochs: 2,
                test_accuracy: 0.5,
                weights: vec![],
            },
            &mut net,
        )
        .unwrap();
        assert!(
            !store.contains("member-0-progress"),
            "committing a member retires its progress record"
        );
    }

    #[test]
    fn mismatched_resume_is_refused() {
        let store = MemStore::new();
        let mut r = StdRng::seed_from_u64(4);
        let mut net = mlp(&[4, 8, 2], 0.0, &mut r);
        let mut sess = RunSession::open(&store, "EDDE", 1).unwrap();
        sess.record_member(
            MemberRecord {
                label: "edde-1".into(),
                alpha: 1.0,
                seed: 0,
                net_key: String::new(),
                cumulative_epochs: 1,
                test_accuracy: 0.5,
                weights: vec![],
            },
            &mut net,
        )
        .unwrap();
        drop(sess);
        let wrong_method = RunSession::open(&store, "Bagging", 1).unwrap_err();
        assert!(
            wrong_method.to_string().contains("refusing"),
            "{wrong_method}"
        );
        let wrong_fp = RunSession::open(&store, "EDDE", 2).unwrap_err();
        assert!(wrong_fp.to_string().contains("fingerprint"), "{wrong_fp}");
    }

    #[test]
    fn corrupted_manifest_is_detected_on_open() {
        let store = MemStore::new();
        let mut r = StdRng::seed_from_u64(5);
        let mut net = mlp(&[4, 8, 2], 0.0, &mut r);
        let mut sess = RunSession::open(&store, "EDDE", 1).unwrap();
        sess.record_member(
            MemberRecord {
                label: "edde-1".into(),
                alpha: 1.0,
                seed: 0,
                net_key: String::new(),
                cumulative_epochs: 1,
                test_accuracy: 0.5,
                weights: vec![1.0],
            },
            &mut net,
        )
        .unwrap();
        drop(sess);
        // Flip one payload bit of the sealed manifest.
        let mut raw = store.get(MANIFEST_KEY).unwrap().to_vec();
        let idx = raw.len() - 3;
        raw[idx] ^= 0x20;
        store.put(MANIFEST_KEY, &raw).unwrap();
        let err = RunSession::open(&store, "EDDE", 1).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn rng_plan_modes() {
        use rand::RngExt;
        // Shared mode keeps one stream across members.
        let mut shared = RngPlan::shared(StdRng::seed_from_u64(1));
        let a: u64 = shared.rng().random();
        shared.start_member(1);
        let b: u64 = shared.rng().random();
        let mut reference = StdRng::seed_from_u64(1);
        let (ra, rb): (u64, u64) = (reference.random(), reference.random());
        assert_eq!((a, b), (ra, rb));
        assert_eq!(shared.seed_for(0), 0);

        // Per-member mode resets per member, independent of history.
        let mut pm = RngPlan::per_member(9, 0xEDDE);
        pm.start_member(2);
        let x: u64 = pm.rng().random();
        let mut pm2 = RngPlan::per_member(9, 0xEDDE);
        pm2.start_member(0);
        let _: u64 = pm2.rng().random(); // member 0 consumed differently
        pm2.start_member(2);
        let y: u64 = pm2.rng().random();
        assert_eq!(x, y, "member stream must not depend on history");
        assert_eq!(pm.seed_for(2), member_seed(9, 0xEDDE, 2));
    }
}
