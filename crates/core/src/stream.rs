//! Streaming evaluation: every eval statistic as a fixed-memory fold.
//!
//! The historical eval stack demanded a fully materialized [`Dataset`]
//! (and a fully materialized `[N, k]` soft-target matrix per member).
//! This module re-expresses each consumer as a **streaming reducer** over
//! an [`edde_data::stream::BatchSource`]: per-batch member passes feed
//! per-batch folds, so evaluation memory is bounded by one batch no
//! matter how long the stream runs.
//!
//! ## Bit-identity contract
//!
//! A streamed statistic equals its in-memory twin **bitwise**, for any
//! batch split, on every SIMD backend, at every thread count:
//!
//! * member passes are row-independent (pinned since the frozen engine
//!   landed), so a row's soft target does not depend on which batch
//!   carried it;
//! * the ensemble vote is the same serial α-reduce in member order,
//!   applied per batch — element-wise arithmetic, split-invariant;
//! * accuracy folds integer correct/total counts;
//! * diversity (Eq. 2/7) and bias/variance (Eq. 13) keep one `f64`
//!   accumulator **per pair / per member**, each of which sums its
//!   per-row terms in row order — the same addition order regardless of
//!   where batch boundaries fall — and finalizes in pair/member order.
//!
//! The in-memory entry points ([`crate::FrozenEnsemble::accuracy`],
//! [`crate::EnsembleModel::accuracy`], [`crate::bias_variance::bias_variance`],
//! the β-probe's fold accuracies) are themselves thin wrappers over these
//! reducers fed by a [`DatasetStream`] — one fold implementation, two
//! feeding modes.
//!
//! ## Disagreement scoring
//!
//! [`disagreement_scores`] restates the Eq. 2 quantity as a per-sample
//! novelty score: the α-weighted mean member distance from the ensemble
//! vote, `√2/2 · Σ_t ᾱ_t ‖h_t(x) − H(x)‖₂` with `ᾱ = α/Σα`, in `[0, 1]`.
//! In-distribution inputs land where members agree (low score); drifted
//! inputs revive the disagreement the diversity objective trained in.
//! [`AurocAccumulator`] turns two scored streams into an AUROC in fixed
//! memory (binned ranks, 1024 bins).

use crate::bias_variance::BiasVariance;
use crate::ensemble::EnsembleModel;
use crate::error::{EnsembleError, Result};
use crate::frozen::{self, FrozenEnsemble};
use crate::sharded::ShardedEnsemble;
use edde_data::stream::BatchSource;
use edde_nn::infer::with_thread_ctx;
use edde_nn::Network;
use edde_tensor::ops::argmax_rows;
use edde_tensor::parallel::parallel_map;
use edde_tensor::simd::sq_l2_dist;
use edde_tensor::Tensor;

/// An ensemble evaluated member-by-member on feature batches — the one
/// interface the streaming reducers score through. Implemented by
/// [`EnsembleModel`] (mutable training stack), [`FrozenEnsemble`]
/// (serving stack), and [`ShardedEnsemble`] (lazy serving stack, members
/// materialize on first use).
pub trait MemberScorer {
    /// Number of members.
    fn member_count(&self) -> usize;

    /// Ensemble weights `α_t`, in member order.
    fn member_alphas(&self) -> Vec<f32>;

    /// Soft targets of the first `prefix` members on one feature batch,
    /// in member order — the identical member pass the in-memory
    /// `soft_targets_prefix` runs (pool-parallel, per-thread contexts).
    /// Resolves the eval batch from the environment per call; the
    /// reducer driver loops use the `_batched` form instead, with the
    /// batch resolved once at entry.
    fn member_soft_targets_prefix(&self, features: &Tensor, prefix: usize) -> Result<Vec<Tensor>> {
        self.member_soft_targets_prefix_batched(features, prefix, crate::env::eval_batch())
    }

    /// [`member_soft_targets_prefix`](Self::member_soft_targets_prefix)
    /// with an explicit inner row-batch size (bit-identical for any
    /// positive value) — the zero-env-read form.
    fn member_soft_targets_prefix_batched(
        &self,
        features: &Tensor,
        prefix: usize,
        batch: usize,
    ) -> Result<Vec<Tensor>>;
}

impl MemberScorer for EnsembleModel {
    fn member_count(&self) -> usize {
        self.len()
    }

    fn member_alphas(&self) -> Vec<f32> {
        self.members().iter().map(|m| m.alpha).collect()
    }

    fn member_soft_targets_prefix_batched(
        &self,
        features: &Tensor,
        prefix: usize,
        batch: usize,
    ) -> Result<Vec<Tensor>> {
        let nets: Vec<&Network> = self.members()[..prefix]
            .iter()
            .map(|m| &m.network)
            .collect();
        parallel_map(&nets, move |_, net| {
            with_thread_ctx(|ctx| {
                frozen::network_soft_targets_tau_batched(net, features, 1.0, batch, ctx)
            })
        })
        .into_iter()
        .collect()
    }
}

impl MemberScorer for FrozenEnsemble {
    fn member_count(&self) -> usize {
        self.len()
    }

    fn member_alphas(&self) -> Vec<f32> {
        self.members().iter().map(|m| m.alpha()).collect()
    }

    fn member_soft_targets_prefix_batched(
        &self,
        features: &Tensor,
        prefix: usize,
        batch: usize,
    ) -> Result<Vec<Tensor>> {
        parallel_map(&self.members()[..prefix], move |_, m| {
            with_thread_ctx(|ctx| m.soft_targets_tau_batched(features, 1.0, batch, ctx))
        })
        .into_iter()
        .collect()
    }
}

impl MemberScorer for ShardedEnsemble {
    fn member_count(&self) -> usize {
        self.len()
    }

    fn member_alphas(&self) -> Vec<f32> {
        // Materializes the metadata path only: alphas live in the root's
        // member metadata, but the trait wants the serving values, which
        // sit on the (possibly lazily decoded) members. Decode on demand.
        (0..self.len())
            .map(|t| self.member(t).map(|m| m.alpha()).unwrap_or(0.0))
            .collect()
    }

    fn member_soft_targets_prefix_batched(
        &self,
        features: &Tensor,
        prefix: usize,
        batch: usize,
    ) -> Result<Vec<Tensor>> {
        // Materialize exactly the prefix on first use — evaluating a lazy
        // sharded bundle streams while members decode incrementally.
        let members: Vec<&frozen::FrozenMember> =
            (0..prefix).map(|t| self.member(t)).collect::<Result<_>>()?;
        parallel_map(&members, move |_, m| {
            with_thread_ctx(|ctx| m.soft_targets_tau_batched(features, 1.0, batch, ctx))
        })
        .into_iter()
        .collect()
    }
}

/// Streaming ensemble accuracy: integer correct/total counts, so any
/// batch split yields the exact ratio the materialized path computes.
#[derive(Debug, Clone, Default)]
pub struct StreamAccuracy {
    correct: usize,
    total: usize,
}

impl StreamAccuracy {
    /// An empty fold.
    pub fn new() -> Self {
        StreamAccuracy::default()
    }

    /// Folds one batch of ensemble soft targets against its labels.
    pub fn fold(&mut self, probs: &Tensor, labels: &[usize]) -> Result<()> {
        let preds = argmax_rows(probs)?;
        if preds.len() != labels.len() {
            return Err(EnsembleError::DataMismatch(format!(
                "{} predictions vs {} labels",
                preds.len(),
                labels.len()
            )));
        }
        self.correct += preds.iter().zip(labels).filter(|(p, y)| p == y).count();
        self.total += labels.len();
        Ok(())
    }

    /// Rows folded so far.
    pub fn rows(&self) -> usize {
        self.total
    }

    /// The accuracy; errors on an empty stream.
    pub fn finish(&self) -> Result<f32> {
        if self.total == 0 {
            return Err(EnsembleError::DataMismatch("empty evaluation set".into()));
        }
        Ok(self.correct as f32 / self.total as f32)
    }
}

/// Streaming Eq. 7 ensemble diversity: one `f64` distance accumulator per
/// unordered member pair, summed in row order — the identical addition
/// order [`crate::diversity::ensemble_diversity`] uses, so the fold is
/// bit-identical for any batch split.
#[derive(Debug, Clone)]
pub struct StreamDiversity {
    members: usize,
    /// Pair totals in `(i, j)` lexicographic order, `i < j`.
    totals: Vec<f64>,
    rows: usize,
}

impl StreamDiversity {
    /// An empty fold over a `members`-strong ensemble.
    pub fn new(members: usize) -> Self {
        StreamDiversity {
            members,
            totals: vec![0.0; members.saturating_sub(1) * members / 2],
            rows: 0,
        }
    }

    /// Folds one batch of per-member soft targets (member order).
    pub fn fold(&mut self, member_probs: &[Tensor]) -> Result<()> {
        if member_probs.len() != self.members {
            return Err(EnsembleError::DataMismatch(format!(
                "{} member matrices for a {}-member fold",
                member_probs.len(),
                self.members
            )));
        }
        if self.members < 2 {
            return Ok(());
        }
        let dims = member_probs[0].dims();
        let (b, k) = (dims[0], dims[1]);
        let mut pair = 0usize;
        for i in 0..self.members {
            for j in (i + 1)..self.members {
                let (a, bm) = (member_probs[i].data(), member_probs[j].data());
                let total = &mut self.totals[pair];
                for r in 0..b {
                    let ra = &a[r * k..(r + 1) * k];
                    let rb = &bm[r * k..(r + 1) * k];
                    *total += f64::from(sq_l2_dist(ra, rb).sqrt());
                }
                pair += 1;
            }
        }
        self.rows += b;
        Ok(())
    }

    /// Eq. 7 over everything folded; errors on `< 2` members or an empty
    /// stream.
    pub fn finish(&self) -> Result<f32> {
        if self.members < 2 {
            return Err(EnsembleError::BadConfig(
                "ensemble diversity needs at least two members".into(),
            ));
        }
        if self.rows == 0 {
            return Err(EnsembleError::DataMismatch(
                "diversity over zero samples".into(),
            ));
        }
        let mut total = 0.0f64;
        for pair_total in &self.totals {
            let pair = (std::f64::consts::FRAC_1_SQRT_2 * pair_total / self.rows as f64) as f32;
            total += f64::from(pair);
        }
        let t = self.members;
        Ok((2.0 * total / (t * (t - 1)) as f64) as f32)
    }
}

/// Streaming bias/variance (Eq. 13 / Figure 1): one `f64` accumulator per
/// member for each of bias and variance, summed in row order and
/// finalized in member order — batch-split invariant by construction.
#[derive(Debug, Clone)]
pub struct StreamBiasVariance {
    bias: Vec<f64>,
    var: Vec<f64>,
    rows: usize,
    /// Batch-local mean scratch, reused across folds.
    mean: Vec<f32>,
}

impl StreamBiasVariance {
    /// An empty fold over a `members`-strong ensemble.
    pub fn new(members: usize) -> Self {
        StreamBiasVariance {
            bias: vec![0.0; members],
            var: vec![0.0; members],
            rows: 0,
            mean: Vec::new(),
        }
    }

    /// Folds one batch of per-member soft targets and its labels.
    pub fn fold(&mut self, member_probs: &[Tensor], labels: &[usize]) -> Result<()> {
        let t = self.bias.len();
        if member_probs.len() != t {
            return Err(EnsembleError::DataMismatch(format!(
                "{} member matrices for a {}-member fold",
                member_probs.len(),
                t
            )));
        }
        let dims = member_probs[0].dims();
        let (b, k) = (dims[0], dims[1]);
        // unweighted mean member soft target per sample — member-order f32
        // sums then /t, the exact arithmetic of the materialized path
        self.mean.clear();
        self.mean.resize(b * k, 0.0);
        for probs in member_probs {
            for (m, &p) in self.mean.iter_mut().zip(probs.data()) {
                *m += p;
            }
        }
        for m in &mut self.mean {
            *m /= t as f32;
        }
        let half_sqrt2 = std::f32::consts::FRAC_1_SQRT_2;
        for (ti, probs) in member_probs.iter().enumerate() {
            let (bias_acc, var_acc) = (&mut self.bias[ti], &mut self.var[ti]);
            for (i, &y) in labels.iter().enumerate().take(b) {
                let row = &probs.data()[i * k..(i + 1) * k];
                let mut d_bias = 0.0f32;
                for (c, &p) in row.iter().enumerate() {
                    let target = if c == y { 1.0 } else { 0.0 };
                    d_bias += (p - target) * (p - target);
                }
                *bias_acc += f64::from(half_sqrt2 * d_bias.sqrt());
                let mrow = &self.mean[i * k..(i + 1) * k];
                let mut d_var = 0.0f32;
                for (&p, &m) in row.iter().zip(mrow.iter()) {
                    d_var += (p - m) * (p - m);
                }
                *var_acc += f64::from(half_sqrt2 * d_var.sqrt());
            }
        }
        self.rows += b;
        Ok(())
    }

    /// The bias/variance point; errors on an empty ensemble or stream.
    pub fn finish(&self) -> Result<BiasVariance> {
        let t = self.bias.len();
        if t == 0 {
            return Err(EnsembleError::EmptyEnsemble);
        }
        if self.rows == 0 {
            return Err(EnsembleError::DataMismatch("empty evaluation set".into()));
        }
        let (mut bias_total, mut var_total) = (0.0f64, 0.0f64);
        for ti in 0..t {
            bias_total += self.bias[ti];
            var_total += self.var[ti];
        }
        let denom = (t * self.rows) as f64;
        Ok(BiasVariance {
            bias: (bias_total / denom) as f32,
            variance: (var_total / denom) as f32,
        })
    }
}

/// Per-sample disagreement scores for one batch: the Eq. 2 quantity
/// restated as an α-weighted variance of votes,
///
/// ```text
/// score(x) = √2/2 · Σ_t ᾱ_t ‖h_t(x) − H(x)‖₂,   ᾱ_t = α_t / Σα
/// ```
///
/// where `H(x)` is the ensemble's α-weighted soft vote. The score lies in
/// `[0, 1]`: 0 when every member votes identically, approaching 1 when
/// members place full confidence on pairwise different classes.
pub fn disagreement_scores(member_probs: &[Tensor], alphas: &[f32]) -> Result<Vec<f32>> {
    let t = member_probs.len();
    if t == 0 {
        return Err(EnsembleError::EmptyEnsemble);
    }
    if alphas.len() != t {
        return Err(EnsembleError::DataMismatch(format!(
            "{} alphas for {t} members",
            alphas.len()
        )));
    }
    let alpha_sum: f32 = alphas.iter().sum();
    if alpha_sum <= 0.0 {
        return Err(EnsembleError::BadConfig(
            "member weights sum to zero".into(),
        ));
    }
    let dims = member_probs[0].dims();
    let (b, k) = (dims[0], dims[1]);
    // H(x): α-weighted vote, renormalized — same arithmetic as Eq. 16
    let mut vote = vec![0.0f32; b * k];
    for (probs, &alpha) in member_probs.iter().zip(alphas) {
        for (v, &p) in vote.iter_mut().zip(probs.data()) {
            *v += p * alpha;
        }
    }
    for v in &mut vote {
        *v /= alpha_sum;
    }
    let half_sqrt2 = std::f32::consts::FRAC_1_SQRT_2;
    let mut scores = vec![0.0f32; b];
    for (probs, &alpha) in member_probs.iter().zip(alphas) {
        let weight = alpha / alpha_sum;
        for (i, score) in scores.iter_mut().enumerate() {
            let row = &probs.data()[i * k..(i + 1) * k];
            let vrow = &vote[i * k..(i + 1) * k];
            *score += weight * half_sqrt2 * sq_l2_dist(row, vrow).sqrt();
        }
    }
    Ok(scores)
}

/// Fixed-memory AUROC: scores in `[0, 1]` are binned (1024 bins) and the
/// rank statistic is computed from the two histograms, counting
/// within-bin collisions as ties (½ credit). Memory is constant no
/// matter how many scores stream through.
#[derive(Debug, Clone)]
pub struct AurocAccumulator {
    neg: Vec<u64>,
    pos: Vec<u64>,
}

const AUROC_BINS: usize = 1024;

impl AurocAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        AurocAccumulator {
            neg: vec![0; AUROC_BINS],
            pos: vec![0; AUROC_BINS],
        }
    }

    fn bin(score: f32) -> usize {
        ((score.clamp(0.0, 1.0) * AUROC_BINS as f32) as usize).min(AUROC_BINS - 1)
    }

    /// Records scores from the negative (in-distribution) class.
    pub fn add_negatives(&mut self, scores: &[f32]) {
        for &s in scores {
            self.neg[Self::bin(s)] += 1;
        }
    }

    /// Records scores from the positive (drifted / OOD) class.
    pub fn add_positives(&mut self, scores: &[f32]) {
        for &s in scores {
            self.pos[Self::bin(s)] += 1;
        }
    }

    /// The area under the ROC curve: the probability a positive outscores
    /// a negative (ties count ½). Errors unless both classes are present.
    pub fn auroc(&self) -> Result<f32> {
        let n: u64 = self.neg.iter().sum();
        let p: u64 = self.pos.iter().sum();
        if n == 0 || p == 0 {
            return Err(EnsembleError::DataMismatch(
                "AUROC needs scores from both classes".into(),
            ));
        }
        let mut neg_below = 0u64;
        let mut won = 0.0f64;
        for bin in 0..AUROC_BINS {
            won += self.pos[bin] as f64 * (neg_below as f64 + 0.5 * self.neg[bin] as f64);
            neg_below += self.neg[bin];
        }
        Ok((won / (n as f64 * p as f64)) as f32)
    }
}

impl Default for AurocAccumulator {
    fn default() -> Self {
        AurocAccumulator::new()
    }
}

/// Everything one fixed-memory pass over a stream produces.
#[derive(Debug, Clone)]
pub struct StreamEvalReport {
    /// Rows consumed.
    pub rows: usize,
    /// Batches consumed.
    pub batches: usize,
    /// Ensemble accuracy (Eq. 16 vote).
    pub accuracy: f32,
    /// Mean individual member accuracy.
    pub average_member_accuracy: f32,
    /// Eq. 7 diversity (`None` for single-member ensembles).
    pub diversity: Option<f32>,
    /// The Figure 1 bias/variance point.
    pub bias_variance: BiasVariance,
    /// Peak resident evaluation bytes across batches — the fixed-buffer
    /// RSS proxy: features + per-member soft targets + the vote, for the
    /// largest batch seen. Independent of stream length.
    pub peak_batch_bytes: usize,
}

/// Resident bytes for one scored batch: the feature tensor, every
/// member's soft-target matrix, and the ensemble vote.
fn batch_resident_bytes(features: &Tensor, member_probs: &[Tensor], vote: &Tensor) -> usize {
    let f = features.data().len();
    let m: usize = member_probs.iter().map(|p| p.data().len()).sum();
    (f + m + vote.data().len()) * std::mem::size_of::<f32>()
}

/// One fixed-memory pass computing every Table/Figure statistic at once:
/// ensemble accuracy, average member accuracy, Eq. 7 diversity, and the
/// bias/variance point, plus the peak resident byte count. Each batch is
/// scored once (one member pass feeds all four folds) and recycled back
/// to the source.
pub fn stream_evaluate(
    scorer: &dyn MemberScorer,
    src: &mut dyn BatchSource,
) -> Result<StreamEvalReport> {
    let t = scorer.member_count();
    if t == 0 {
        return Err(EnsembleError::EmptyEnsemble);
    }
    let alphas = scorer.member_alphas();
    let eval_batch = crate::env::eval_batch();
    let mut acc = StreamAccuracy::new();
    let mut member_correct = vec![0usize; t];
    let mut div = StreamDiversity::new(t);
    let mut bv = StreamBiasVariance::new(t);
    let mut batches = 0usize;
    let mut peak = 0usize;
    while let Some(batch) = src.next_batch() {
        let probs = scorer.member_soft_targets_prefix_batched(&batch.features, t, eval_batch)?;
        let vote = frozen::alpha_weighted_average_of(&probs, &alphas)?;
        peak = peak.max(batch_resident_bytes(&batch.features, &probs, &vote));
        acc.fold(&vote, &batch.labels)?;
        for (ti, p) in probs.iter().enumerate() {
            let preds = argmax_rows(p)?;
            member_correct[ti] += preds
                .iter()
                .zip(&batch.labels)
                .filter(|(pr, y)| pr == y)
                .count();
        }
        if t >= 2 {
            div.fold(&probs)?;
        }
        bv.fold(&probs, &batch.labels)?;
        batches += 1;
        src.recycle(batch);
    }
    let rows = acc.rows();
    let accuracy = acc.finish()?;
    // identical fold order to the materialized average_member_accuracy:
    // per-member ratio first, then an f32 sum in member order
    let mut avg_total = 0.0f32;
    for &correct in &member_correct {
        avg_total += correct as f32 / rows as f32;
    }
    Ok(StreamEvalReport {
        rows,
        batches,
        accuracy,
        average_member_accuracy: avg_total / t as f32,
        diversity: if t >= 2 { Some(div.finish()?) } else { None },
        bias_variance: bv.finish()?,
        peak_batch_bytes: peak,
    })
}

/// Streaming ensemble accuracy over the first `prefix` members — the one
/// fold implementation behind both the frozen and mutable accuracy paths.
pub fn stream_accuracy_prefix(
    scorer: &dyn MemberScorer,
    src: &mut dyn BatchSource,
    prefix: usize,
) -> Result<f32> {
    if prefix == 0 || prefix > scorer.member_count() {
        return Err(EnsembleError::EmptyEnsemble);
    }
    let alphas = &scorer.member_alphas()[..prefix];
    let eval_batch = crate::env::eval_batch();
    let mut acc = StreamAccuracy::new();
    while let Some(batch) = src.next_batch() {
        let probs =
            scorer.member_soft_targets_prefix_batched(&batch.features, prefix, eval_batch)?;
        let vote = frozen::alpha_weighted_average_of(&probs, alphas)?;
        acc.fold(&vote, &batch.labels)?;
        src.recycle(batch);
    }
    acc.finish()
}

/// Streaming full-ensemble accuracy.
pub fn stream_accuracy(scorer: &dyn MemberScorer, src: &mut dyn BatchSource) -> Result<f32> {
    stream_accuracy_prefix(scorer, src, scorer.member_count())
}

/// Streaming mean *individual* member accuracy (the "Average accuracy"
/// column of Tables IV/VI): per-member integer correct counts fold per
/// batch; the finish computes each member's exact ratio, then the same
/// member-order f32 sum the materialized path used.
pub fn stream_average_member_accuracy(
    scorer: &dyn MemberScorer,
    src: &mut dyn BatchSource,
) -> Result<f32> {
    let t = scorer.member_count();
    if t == 0 {
        return Err(EnsembleError::EmptyEnsemble);
    }
    let eval_batch = crate::env::eval_batch();
    let mut member_correct = vec![0usize; t];
    let mut rows = 0usize;
    while let Some(batch) = src.next_batch() {
        let probs = scorer.member_soft_targets_prefix_batched(&batch.features, t, eval_batch)?;
        for (ti, p) in probs.iter().enumerate() {
            let preds = argmax_rows(p)?;
            member_correct[ti] += preds
                .iter()
                .zip(&batch.labels)
                .filter(|(pr, y)| pr == y)
                .count();
        }
        rows += batch.labels.len();
        src.recycle(batch);
    }
    if rows == 0 {
        return Err(EnsembleError::DataMismatch("empty evaluation set".into()));
    }
    let mut total = 0.0f32;
    for &correct in &member_correct {
        total += correct as f32 / rows as f32;
    }
    Ok(total / t as f32)
}

/// Streaming Eq. 7 ensemble diversity.
pub fn stream_diversity(scorer: &dyn MemberScorer, src: &mut dyn BatchSource) -> Result<f32> {
    let t = scorer.member_count();
    let eval_batch = crate::env::eval_batch();
    let mut div = StreamDiversity::new(t);
    while let Some(batch) = src.next_batch() {
        let probs = scorer.member_soft_targets_prefix_batched(&batch.features, t, eval_batch)?;
        div.fold(&probs)?;
        src.recycle(batch);
    }
    div.finish()
}

/// Streaming bias/variance (the Figure 1 point).
pub fn stream_bias_variance(
    scorer: &dyn MemberScorer,
    src: &mut dyn BatchSource,
) -> Result<BiasVariance> {
    let t = scorer.member_count();
    if t == 0 {
        return Err(EnsembleError::EmptyEnsemble);
    }
    let eval_batch = crate::env::eval_batch();
    let mut bv = StreamBiasVariance::new(t);
    while let Some(batch) = src.next_batch() {
        let probs = scorer.member_soft_targets_prefix_batched(&batch.features, t, eval_batch)?;
        bv.fold(&probs, &batch.labels)?;
        src.recycle(batch);
    }
    bv.finish()
}

/// Streaming single-network accuracy — the fold the β-probe's seen/unseen
/// fold accuracies run on.
pub fn network_stream_accuracy(net: &Network, src: &mut dyn BatchSource) -> Result<f32> {
    let eval_batch = crate::env::eval_batch();
    let mut acc = StreamAccuracy::new();
    while let Some(batch) = src.next_batch() {
        let probs = with_thread_ctx(|ctx| {
            frozen::network_soft_targets_tau_batched(net, &batch.features, 1.0, eval_batch, ctx)
        })?;
        acc.fold(&probs, &batch.labels)?;
        src.recycle(batch);
    }
    acc.finish()
}

/// Report of one disagreement-scored pass over a stream.
#[derive(Debug, Clone)]
pub struct DisagreementReport {
    /// Rows scored.
    pub rows: usize,
    /// Mean disagreement score.
    pub mean_score: f32,
    /// Peak resident evaluation bytes (fixed-buffer RSS proxy).
    pub peak_batch_bytes: usize,
}

/// Streams a source through the ensemble, feeding per-sample disagreement
/// scores into `sink` (e.g. one side of an [`AurocAccumulator`]).
pub fn stream_disagreement(
    scorer: &dyn MemberScorer,
    src: &mut dyn BatchSource,
    mut sink: impl FnMut(&[f32]),
) -> Result<DisagreementReport> {
    let t = scorer.member_count();
    if t == 0 {
        return Err(EnsembleError::EmptyEnsemble);
    }
    let alphas = scorer.member_alphas();
    let eval_batch = crate::env::eval_batch();
    let mut rows = 0usize;
    let mut total = 0.0f64;
    let mut peak = 0usize;
    while let Some(batch) = src.next_batch() {
        let probs = scorer.member_soft_targets_prefix_batched(&batch.features, t, eval_batch)?;
        let scores = disagreement_scores(&probs, &alphas)?;
        let probs_bytes: usize = probs.iter().map(|p| p.data().len()).sum();
        peak = peak.max(
            (batch.features.data().len() + probs_bytes + scores.len()) * std::mem::size_of::<f32>(),
        );
        for &s in &scores {
            total += f64::from(s);
        }
        rows += scores.len();
        sink(&scores);
        src.recycle(batch);
    }
    if rows == 0 {
        return Err(EnsembleError::DataMismatch("empty evaluation set".into()));
    }
    Ok(DisagreementReport {
        rows,
        mean_score: (total / rows as f64) as f32,
        peak_batch_bytes: peak,
    })
}

/// Convenience: AUROC of disagreement-based OOD detection — streams the
/// in-distribution source as negatives and the drifted source as
/// positives, in fixed memory end to end.
pub fn disagreement_auroc(
    scorer: &dyn MemberScorer,
    in_dist: &mut dyn BatchSource,
    drifted: &mut dyn BatchSource,
) -> Result<f32> {
    let mut auroc = AurocAccumulator::new();
    stream_disagreement(scorer, in_dist, |s| auroc.add_negatives(s))?;
    stream_disagreement(scorer, drifted, |s| auroc.add_positives(s))?;
    auroc.auroc()
}

impl FrozenEnsemble {
    /// Streaming ensemble accuracy over a [`BatchSource`] — the serving-
    /// shaped twin of [`FrozenEnsemble::accuracy`], same fold, fixed
    /// memory.
    pub fn accuracy_stream(&self, src: &mut dyn BatchSource) -> Result<f32> {
        stream_accuracy(self, src)
    }
}

impl ShardedEnsemble {
    /// Streaming ensemble accuracy over a [`BatchSource`]. Members decode
    /// lazily on the first batch — a sharded bundle can be evaluated
    /// while it materializes.
    pub fn accuracy_stream(&self, src: &mut dyn BatchSource) -> Result<f32> {
        stream_accuracy(self, src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_data::stream::DatasetStream;
    use edde_data::Dataset;
    use edde_nn::models::mlp;
    use edde_tensor::rng::rand_uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(n: usize) -> Dataset {
        let mut r = StdRng::seed_from_u64(3);
        let features = rand_uniform(&[n, 5], -1.0, 1.0, &mut r);
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(features, labels, 3).unwrap()
    }

    fn ensemble() -> EnsembleModel {
        let mut ens = EnsembleModel::new();
        for (i, alpha) in [(1u64, 1.2f32), (2, 0.7), (3, 1.9)] {
            let mut r = StdRng::seed_from_u64(i);
            ens.push(mlp(&[5, 12, 3], 0.0, &mut r), alpha, format!("m{i}"));
        }
        ens
    }

    #[test]
    fn stream_accuracy_matches_materialized_for_any_batch() {
        let ens = ensemble();
        let data = dataset(41);
        let reference = {
            let probs = ens.soft_targets(data.features()).unwrap();
            edde_nn::metrics::accuracy(&probs, data.labels()).unwrap()
        };
        for batch in [1usize, 7, 41, 100] {
            let mut src = DatasetStream::sequential(&data, batch);
            let got = stream_accuracy(&ens, &mut src).unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "batch={batch}");
        }
    }

    #[test]
    fn stream_diversity_matches_materialized_for_any_batch() {
        let ens = ensemble();
        let data = dataset(29);
        let reference = crate::diversity::model_diversity(&ens, data.features()).unwrap();
        for batch in [1usize, 4, 29, 64] {
            let mut src = DatasetStream::sequential(&data, batch);
            let got = stream_diversity(&ens, &mut src).unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "batch={batch}");
        }
    }

    #[test]
    fn stream_bias_variance_is_batch_split_invariant() {
        let ens = ensemble();
        let data = dataset(33);
        let mut whole = DatasetStream::sequential(&data, usize::MAX >> 1);
        let reference = stream_bias_variance(&ens, &mut whole).unwrap();
        for batch in [1usize, 5, 16] {
            let mut src = DatasetStream::sequential(&data, batch);
            let got = stream_bias_variance(&ens, &mut src).unwrap();
            assert_eq!(
                got.bias.to_bits(),
                reference.bias.to_bits(),
                "batch={batch}"
            );
            assert_eq!(
                got.variance.to_bits(),
                reference.variance.to_bits(),
                "batch={batch}"
            );
        }
    }

    #[test]
    fn disagreement_is_zero_for_identical_members_and_positive_otherwise() {
        let mut same = EnsembleModel::new();
        let mut r = StdRng::seed_from_u64(1);
        let net = mlp(&[5, 12, 3], 0.0, &mut r);
        same.push(net.clone(), 1.0, "a");
        same.push(net, 2.0, "b");
        let data = dataset(10);
        let probs = same.member_soft_targets(data.features()).unwrap();
        // (1·p + 2·p)/3 rounds within an ulp of p, so allow fp residue
        let scores = disagreement_scores(&probs, &[1.0, 2.0]).unwrap();
        assert!(scores.iter().all(|&s| s < 1e-6), "{scores:?}");

        let ens = ensemble();
        let probs = ens.member_soft_targets(data.features()).unwrap();
        let alphas = ens.member_alphas();
        let scores = disagreement_scores(&probs, &alphas).unwrap();
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
        assert!(scores.iter().any(|&s| s > 0.0));
    }

    #[test]
    fn auroc_accumulator_orders_separated_and_overlapping_classes() {
        let mut a = AurocAccumulator::new();
        a.add_negatives(&[0.1, 0.2, 0.15]);
        a.add_positives(&[0.8, 0.9, 0.85]);
        assert!((a.auroc().unwrap() - 1.0).abs() < 1e-6);

        let mut b = AurocAccumulator::new();
        b.add_negatives(&[0.5; 10]);
        b.add_positives(&[0.5; 10]);
        assert!((b.auroc().unwrap() - 0.5).abs() < 1e-6);

        let mut c = AurocAccumulator::new();
        c.add_negatives(&[0.9]);
        c.add_positives(&[0.1]);
        assert!(c.auroc().unwrap() < 0.1);

        assert!(AurocAccumulator::new().auroc().is_err());
    }

    #[test]
    fn stream_evaluate_reports_every_statistic_in_one_pass() {
        let ens = ensemble();
        let data = dataset(37);
        let mut src = DatasetStream::sequential(&data, 8);
        let report = stream_evaluate(&ens, &mut src).unwrap();
        assert_eq!(report.rows, 37);
        assert_eq!(report.batches, 5);
        assert_eq!(
            report.accuracy.to_bits(),
            ens.accuracy(&data).unwrap().to_bits()
        );
        assert_eq!(
            report.average_member_accuracy.to_bits(),
            ens.average_member_accuracy(&data).unwrap().to_bits()
        );
        assert_eq!(
            report.diversity.unwrap().to_bits(),
            crate::diversity::model_diversity(&ens, data.features())
                .unwrap()
                .to_bits()
        );
        let bv = crate::bias_variance::bias_variance(&ens, &data).unwrap();
        assert_eq!(report.bias_variance.bias.to_bits(), bv.bias.to_bits());
        assert!(report.peak_batch_bytes > 0);
    }

    #[test]
    fn empty_stream_and_empty_ensemble_error() {
        let data = dataset(4);
        let empty = EnsembleModel::new();
        let mut src = DatasetStream::sequential(&data, 2);
        assert!(matches!(
            stream_evaluate(&empty, &mut src),
            Err(EnsembleError::EmptyEnsemble)
        ));
        let ens = ensemble();
        let mut drained = DatasetStream::sequential(&data, 2);
        while drained.next_batch().is_some() {}
        assert!(stream_accuracy(&ens, &mut drained).is_err());
    }
}
