//! The experiment environment ensemble methods run inside.

use crate::error::Result;
use crate::trainer::Trainer;
use edde_data::TrainTest;
use edde_nn::Network;
use rand::rngs::StdRng;
use std::sync::Arc;

// The warn-and-fallback knob parsers live in `edde_tensor::env` (the
// `EnvSource` layer of the config resolver, in the lowest crate of the
// stack) so every `EDDE_*` knob rejects garbage the same way;
// re-exported under their historical path alongside the resolved config
// type itself.
pub use edde_tensor::env::{env_bool, env_f64, env_usize};
pub use edde_tensor::{EddeConfig, EddeConfigBuilder};

/// Row-batch size used by every batched evaluation pass (soft targets,
/// accuracy scoring) — a thin per-call view over
/// [`EddeConfig::env_eval_batch`] (`EDDE_EVAL_BATCH`, default 256, zero
/// and garbage rejected with a warning), re-read on each call so tests
/// can vary it. Hot loops resolve it once at entry and thread the value
/// through the `_batched` variants. Batch size never affects results —
/// evaluation is bit-identical for any positive value.
pub fn eval_batch() -> usize {
    EddeConfig::env_eval_batch()
}

/// Builds a freshly initialized base network. Every ensemble method calls
/// this whenever it needs a new random initialization, so all methods share
/// one architecture per experiment — exactly the paper's protocol ("we train
/// each base model with the same network structures and dataset").
pub type ModelFactory = Arc<dyn Fn(&mut StdRng) -> Result<Network> + Send + Sync>;

/// Everything an [`crate::methods::EnsembleMethod`] needs to run: data, an
/// architecture, a trainer, and a seed.
#[derive(Clone)]
pub struct ExperimentEnv {
    /// Train/test datasets.
    pub data: TrainTest,
    /// Fresh-model builder.
    pub factory: ModelFactory,
    /// Shared training hyper-parameters (batch size, momentum, decay,
    /// augmentation).
    pub trainer: Trainer,
    /// Base learning rate handed to each method's schedule.
    pub base_lr: f32,
    /// Master seed; methods derive their own `StdRng` from it so different
    /// methods on the same env are independently reproducible.
    pub seed: u64,
}

impl ExperimentEnv {
    /// A new environment.
    pub fn new(
        data: TrainTest,
        factory: ModelFactory,
        trainer: Trainer,
        base_lr: f32,
        seed: u64,
    ) -> Self {
        ExperimentEnv {
            data,
            factory,
            trainer,
            base_lr,
            seed,
        }
    }

    /// A deterministic RNG for a method, offset by a method-specific salt so
    /// two methods never share a stream.
    pub fn rng(&self, salt: u64) -> StdRng {
        use rand::SeedableRng;
        StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(salt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    use edde_nn::models::mlp;
    use rand::RngExt;

    #[test]
    fn env_rngs_are_reproducible_and_salted() {
        let data = gaussian_blobs(&GaussianBlobsConfig::default(), 0);
        let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[8, 4, 3], 0.0, r)));
        let env = ExperimentEnv::new(data, factory, Trainer::default(), 0.1, 42);
        let mut a = env.rng(1);
        let mut b = env.rng(1);
        let mut c = env.rng(2);
        let (x, y, z): (u64, u64, u64) = (a.random(), b.random(), c.random());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn env_usize_rejects_zero_and_garbage() {
        // dedicated variable names: env vars are process-global and tests
        // run concurrently, so each case owns its own variable
        assert_eq!(env_usize("EDDE_TEST_KNOB_UNSET", 7), 7);
        std::env::set_var("EDDE_TEST_KNOB_ZERO", "0");
        assert_eq!(env_usize("EDDE_TEST_KNOB_ZERO", 7), 7);
        std::env::set_var("EDDE_TEST_KNOB_GARBAGE", "fast");
        assert_eq!(env_usize("EDDE_TEST_KNOB_GARBAGE", 7), 7);
        std::env::set_var("EDDE_TEST_KNOB_NEG", "-3");
        assert_eq!(env_usize("EDDE_TEST_KNOB_NEG", 7), 7);
        std::env::set_var("EDDE_TEST_KNOB_OK", " 12 ");
        assert_eq!(env_usize("EDDE_TEST_KNOB_OK", 7), 12);
    }

    #[test]
    fn factory_builds_models() {
        let data = gaussian_blobs(&GaussianBlobsConfig::default(), 0);
        let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[8, 4, 3], 0.0, r)));
        let env = ExperimentEnv::new(data, factory, Trainer::default(), 0.1, 1);
        let mut rng = env.rng(0);
        let net = (env.factory)(&mut rng).unwrap();
        assert_eq!(net.num_classes(), 3);
        assert!(net.param_count() > 0);
    }
}
