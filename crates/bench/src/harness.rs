//! Shared runner used by every paper-artifact binary.

use crate::workloads::{
    Scale, CV_BETA, CV_CYCLE, CV_EDDE_LATER, CV_EDDE_MEMBERS, CV_GAMMA, CV_MEMBERS, NLP_CYCLE,
    NLP_EDDE_LATER, NLP_EDDE_MEMBERS, NLP_MEMBERS,
};
use edde_core::evaluate::{summarize, MethodSummary};
use edde_core::methods::{
    AdaBoostM1, AdaBoostNc, Bagging, Bans, Edde, EnsembleMethod, RunResult, SingleModel, Snapshot,
};
use edde_core::{ExperimentEnv, Result};
use edde_nn::checkpoint::FsStore;
use std::path::Path;
use std::time::Instant;

/// The full method line-up of Tables II/III, at CV budgets.
pub fn cv_methods(scale: Scale) -> Vec<Box<dyn EnsembleMethod>> {
    let cycle = scale.epochs(CV_CYCLE);
    let members = scale.members(CV_MEMBERS);
    let edde_members = scale.members(CV_EDDE_MEMBERS);
    let edde_later = scale.epochs(CV_EDDE_LATER);
    vec![
        Box::new(SingleModel::new(cycle * members)),
        Box::new(Bans::new(members, cycle)),
        Box::new(Bagging::new(members, cycle)),
        Box::new(AdaBoostM1::new(members, cycle)),
        Box::new(AdaBoostNc::new(members, cycle)),
        Box::new(Snapshot::new(members, cycle)),
        Box::new(Edde::new(
            edde_members,
            cycle,
            edde_later,
            CV_GAMMA,
            CV_BETA,
        )),
    ]
}

/// The method line-up at NLP budgets — note EDDE's total budget is ~70% of
/// the baselines', reproducing the paper's "half the time" framing.
pub fn nlp_methods(scale: Scale) -> Vec<Box<dyn EnsembleMethod>> {
    let cycle = scale.epochs(NLP_CYCLE);
    let members = scale.members(NLP_MEMBERS);
    let edde_members = scale.members(NLP_EDDE_MEMBERS);
    let edde_later = scale.epochs(NLP_EDDE_LATER);
    vec![
        Box::new(SingleModel::new(cycle * members)),
        Box::new(Bans::new(members, cycle)),
        Box::new(Bagging::new(members, cycle)),
        Box::new(AdaBoostM1::new(members, cycle)),
        Box::new(AdaBoostNc::new(members, cycle)),
        Box::new(Snapshot::new(members, cycle)),
        // the paper transfers "all the convolution layers of Text-CNN" and
        // re-initializes the classifier head: beta 0.95 covers embedding +
        // convolutions while leaving the tiny fc head out of the prefix
        Box::new(Edde::new(edde_members, cycle, edde_later, CV_GAMMA, 0.95)),
    ]
}

/// Runs one method against an environment, printing progress to stderr,
/// and returns its summary row plus the full run for further analysis.
///
/// With `checkpoint_dir` set, resumable methods (EDDE, Bagging, the
/// boosting baselines, BANs, Snapshot) run through
/// [`EnsembleMethod::run_resumable`] against an [`FsStore`] in a
/// per-method subdirectory: a killed run re-invoked with the same
/// directory restores its completed members, picks an in-flight member
/// back up at its last epoch boundary (`member-{t}-progress`), and
/// continues. Methods without resume support (NCL, the single-model
/// baseline) fall back to a plain run.
pub fn run_method(
    method: &dyn EnsembleMethod,
    env: &ExperimentEnv,
    checkpoint_dir: Option<&Path>,
) -> Result<(MethodSummary, RunResult)> {
    let started = Instant::now();
    let run = match checkpoint_dir.filter(|_| method.supports_resumable()) {
        Some(dir) => {
            let store = FsStore::open(dir.join(method_slug(&method.name())))?;
            let resumed = method.run_resumable(env, &store)?;
            eprintln!(
                "  {:<24} [checkpointed at {}]",
                method.name(),
                dir.display()
            );
            resumed
        }
        None => method.run(env)?,
    };
    let summary = summarize(method.name(), &run, &env.data.test)?;
    eprintln!(
        "  {:<24} ens {:>6.2}% avg {:>6.2}% ({} epochs, {:.0}s)",
        summary.name,
        100.0 * summary.ensemble_accuracy,
        100.0 * summary.average_accuracy,
        summary.total_epochs,
        started.elapsed().as_secs_f64(),
    );
    Ok((summary, run))
}

/// Directory-safe form of a method display name ("AdaBoost.M1" ->
/// "adaboost_m1").
fn method_slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Runs a whole line-up, returning summary rows in order. See
/// [`run_method`] for `checkpoint_dir` semantics.
pub fn run_lineup(
    methods: &[Box<dyn EnsembleMethod>],
    env: &ExperimentEnv,
    checkpoint_dir: Option<&Path>,
) -> Result<Vec<MethodSummary>> {
    methods
        .iter()
        .map(|m| run_method(m.as_ref(), env, checkpoint_dir).map(|(s, _)| s))
        .collect()
}
