//! Shared experiment environments for the paper-reproduction binaries.
//!
//! The paper's absolute scales (ResNet-32 on CIFAR, hundreds of GPU epochs)
//! are replaced by CPU workloads calibrated so that the *dynamics* the paper
//! studies actually manifest:
//!
//! * the image task is **fine-grained** (classes grouped into families that
//!   share coarse cues and differ in texture), so under-trained members make
//!   model-idiosyncratic confusions and ensemble diversity converts into
//!   accuracy — the CIFAR-100 regime;
//! * per-member budgets sit at the single-model plateau (≈20 epochs), so a
//!   Snapshot cycle restarts from a converged model rather than riding one
//!   long learning curve;
//! * budget *ratios* between methods follow the paper: equal totals per
//!   group, EDDE's later members at 0.75× the first (paper: 30 of 40).
//!
//! Everything is deterministic under its seed.

use edde_core::{ExperimentEnv, ModelFactory, Trainer};
use edde_data::augment::AugmentConfig;
use edde_data::synth::{SynthImages, SynthImagesConfig, SynthText, SynthTextConfig};
use edde_nn::models::{densenet, resnet, textcnn, DenseNetConfig, ResNetConfig, TextCnnConfig};
use std::sync::Arc;

/// Epochs per member/cycle for the CV groups (the analogue of the paper's
/// 40/50-epoch cycles).
pub const CV_CYCLE: usize = 20;
/// Members per baseline ensemble in the CV groups (total budget =
/// `CV_MEMBERS × CV_CYCLE` = 80 epochs, the analogue of the paper's 200).
pub const CV_MEMBERS: usize = 4;
/// EDDE's later-member epochs (0.75× the cycle, matching the paper's 30/40).
pub const CV_EDDE_LATER: usize = 15;
/// EDDE's member count at the equal CV budget (first + 4×later = 80).
pub const CV_EDDE_MEMBERS: usize = 5;
/// EDDE's γ for the CV groups (paper: 0.1 for ResNet).
pub const CV_GAMMA: f32 = 0.1;
/// EDDE's β for the CV groups (paper: 0.7 for ResNet, 0.5 for DenseNet).
pub const CV_BETA: f32 = 0.7;

/// Epochs per member for the NLP groups (the analogue of the paper's 20).
pub const NLP_CYCLE: usize = 12;
/// Members per baseline ensemble in the NLP groups.
pub const NLP_MEMBERS: usize = 5;
/// EDDE's later-member epochs for NLP (paper: 10 of 20 — half).
pub const NLP_EDDE_LATER: usize = 6;
/// EDDE's member count for NLP; note its total budget (12 + 5×6 = 42) is
/// well under the baselines' 60, reproducing the paper's "EDDE needs half
/// the time" claim on IMDB.
pub const NLP_EDDE_MEMBERS: usize = 6;

/// Scale factor parsed from the command line: `--quick` shrinks budgets to
/// smoke-test size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full reproduction scale (minutes per figure on a laptop-class CPU).
    Full,
    /// Smoke-test scale (seconds to a couple of minutes).
    Quick,
}

impl Scale {
    /// Parses process arguments: `--quick` selects [`Scale::Quick`].
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Scales an epoch count (quick = ceil(n/5), at least 1).
    pub fn epochs(self, n: usize) -> usize {
        match self {
            Scale::Full => n,
            Scale::Quick => n.div_ceil(5).max(1),
        }
    }

    /// Scales a member count (quick = at most 3).
    pub fn members(self, n: usize) -> usize {
        match self {
            Scale::Full => n,
            Scale::Quick => n.min(3),
        }
    }
}

/// Architecture selector for the CV workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CvArch {
    /// The scaled ResNet (stands in for the paper's ResNet-32).
    ResNet,
    /// The scaled DenseNet (stands in for the paper's DenseNet-40).
    DenseNet,
}

impl CvArch {
    /// Display name used in table headers.
    pub fn name(self) -> &'static str {
        match self {
            CvArch::ResNet => "ResNet-8 (for ResNet-32)",
            CvArch::DenseNet => "DenseNet-11 (for DenseNet-40)",
        }
    }
}

/// The SynthCIFAR-10 environment: 10 fine-grained classes in 5 families.
pub fn cifar10_env(arch: CvArch, seed: u64) -> ExperimentEnv {
    image_env(
        SynthImagesConfig {
            classes: 10,
            size: 12,
            channels: 3,
            train_per_class: 40,
            test_per_class: 20,
            noise: 0.35,
            jitter: 1,
            families: Some(5),
        },
        arch,
        seed,
    )
}

/// The SynthCIFAR-100 environment: 20 fine-grained classes in 5 families,
/// fewer samples per class — harder, like CIFAR-100 relative to CIFAR-10.
pub fn cifar100_env(arch: CvArch, seed: u64) -> ExperimentEnv {
    image_env(
        SynthImagesConfig {
            classes: 20,
            size: 12,
            channels: 3,
            train_per_class: 25,
            test_per_class: 10,
            noise: 0.3,
            jitter: 1,
            families: Some(5),
        },
        arch,
        seed,
    )
}

fn image_env(cfg: SynthImagesConfig, arch: CvArch, seed: u64) -> ExperimentEnv {
    let data = SynthImages::generate(&cfg, seed);
    let classes = cfg.classes;
    let factory: ModelFactory = match arch {
        CvArch::ResNet => Arc::new(move |rng| {
            Ok(resnet(
                &ResNetConfig {
                    depth: 8,
                    width: 12,
                    in_channels: 3,
                    num_classes: classes,
                },
                rng,
            )?)
        }),
        CvArch::DenseNet => Arc::new(move |rng| {
            Ok(densenet(
                &DenseNetConfig {
                    layers_per_block: 3,
                    blocks: 2,
                    growth: 10,
                    stem_channels: 10,
                    in_channels: 3,
                    num_classes: classes,
                },
                rng,
            )?)
        }),
    };
    // paper: lr 0.1 for ResNet, 0.2 for DenseNet
    let base_lr = match arch {
        CvArch::ResNet => 0.1,
        CvArch::DenseNet => 0.2,
    };
    ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 32,
            augment: Some(AugmentConfig {
                pad: 1,
                flip_prob: 0.5,
            }),
            ..Trainer::default()
        },
        base_lr,
        seed,
    )
}

/// The SynthIMDB environment (stands in for IMDB; batch 128 per the paper).
pub fn imdb_env(seed: u64) -> ExperimentEnv {
    text_env(SynthTextConfig::imdb_like(), 128, seed)
}

/// The SynthMR environment (stands in for MR; batch 50 per the paper).
pub fn mr_env(seed: u64) -> ExperimentEnv {
    text_env(SynthTextConfig::mr_like(), 50, seed)
}

fn text_env(cfg: SynthTextConfig, batch_size: usize, seed: u64) -> ExperimentEnv {
    let data = SynthText::generate(&cfg, seed);
    let vocab = cfg.vocab;
    let classes = cfg.classes;
    let factory: ModelFactory = Arc::new(move |rng| {
        Ok(textcnn(
            &TextCnnConfig {
                vocab,
                embed_dim: 16,
                kernel_sizes: vec![3, 4, 5],
                filters: 12,
                dropout: 0.3,
                num_classes: classes,
            },
            rng,
        )?)
    });
    ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size,
            ..Trainer::default()
        },
        0.1, // paper: initial lr 0.1 for Text-CNN
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_core::methods::{EnsembleMethod, SingleModel};

    #[test]
    fn scale_arithmetic() {
        assert_eq!(Scale::Full.epochs(20), 20);
        assert_eq!(Scale::Quick.epochs(20), 4);
        assert_eq!(Scale::Quick.epochs(1), 1);
        assert_eq!(Scale::Quick.members(8), 3);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberately pins compile-time budget ratios
    fn budget_ratios_match_the_paper() {
        // equal CV totals, EDDE later members at 0.75x the cycle
        assert_eq!(
            CV_MEMBERS * CV_CYCLE,
            CV_CYCLE + (CV_EDDE_MEMBERS - 1) * CV_EDDE_LATER
        );
        assert_eq!(CV_EDDE_LATER * 4, CV_CYCLE * 3);
        // NLP: EDDE consumes well under the baselines' budget
        assert!(NLP_CYCLE + (NLP_EDDE_MEMBERS - 1) * NLP_EDDE_LATER < NLP_MEMBERS * NLP_CYCLE);
    }

    #[test]
    fn cv_envs_construct_models() {
        for arch in [CvArch::ResNet, CvArch::DenseNet] {
            let env = cifar10_env(arch, 1);
            let mut rng = env.rng(0);
            let net = (env.factory)(&mut rng).unwrap();
            assert_eq!(net.num_classes(), 10);
            assert!(net.param_count() > 1000);
        }
    }

    #[test]
    fn text_envs_train_one_epoch() {
        let env = mr_env(2);
        let result = SingleModel::new(1).run(&env).unwrap();
        assert_eq!(result.model.len(), 1);
    }
}
