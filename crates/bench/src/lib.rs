//! # edde-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! EDDE paper's evaluation (§V), plus criterion micro-benchmarks for the
//! substrate.
//!
//! Each paper artifact has one binary:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Fig. 1 (bias/variance plane) | `fig1_bias_variance` |
//! | Fig. 5 (β sweep, seen vs unseen fold) | `fig5_beta_sweep` |
//! | Fig. 7 (accuracy vs epochs) | `fig7_accuracy_vs_epochs` |
//! | Fig. 8 (pairwise similarity heatmaps) | `fig8_similarity` |
//! | Table II (CV accuracy) | `table2_cv` |
//! | Table III (NLP accuracy) | `table3_nlp` |
//! | Table IV (diversity influence) | `table4_diversity` |
//! | Table V (γ sweep) | `table5_gamma` |
//! | Table VI (ablation) | `table6_ablation` |
//!
//! Run any of them with `cargo run --release -p edde-bench --bin <name>`.
//! Pass `--quick` for a reduced-budget smoke run.
//!
//! Workload construction is shared through [`workloads`].

pub mod harness;
pub mod workloads;
