//! Wall-clock benchmark of the tensor execution layer, emitting the
//! `BENCH_tensor.json` perf-trajectory artifact.
//!
//! Unlike the criterion benches (which need real crates.io dependencies),
//! this binary uses only `std::time` so it runs under the offline stub
//! harness too. Each workload is timed as the minimum over several
//! iterations — the most load-robust point estimate on a shared box.
//!
//! Usage:
//!
//! ```text
//! bench_tensor [--out FILE] [--baseline FILE] [--label TEXT] [--quick]
//!              [--history FILE]
//! ```
//!
//! With `--baseline`, the given results file (a previous run, e.g. the
//! recorded seed-kernel measurement) is embedded verbatim and per-workload
//! speedups are computed against it. With `--history`, one single-line
//! JSON record (timestamp, commit, label, results) is *appended* to the
//! given JSONL file, accumulating a perf trajectory across commits where
//! `--out` only keeps the latest run.

use edde_core::methods::EnsembleMethod;
use edde_nn::loss::CrossEntropy;
use edde_nn::models::{resnet, textcnn, ResNetConfig, TextCnnConfig};
use edde_nn::optim::Sgd;
use edde_nn::{Mode, Network};
use edde_tensor::ops::{conv2d, conv2d_backward, matmul, matmul_a_bt, matmul_at_b};
use edde_tensor::parallel::set_num_threads;
use edde_tensor::rng::rand_uniform;
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` and returns the minimum per-iteration wall-clock in ms.
fn time_min_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    // Warm up caches, the allocator, and (importantly) the worker pool.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        if dt < best {
            best = dt;
        }
    }
    best
}

/// Min-of-N for durability-bound store writes: every iteration gets a
/// fresh `FsStore` directory (checkpoints write new epoch keys, not over
/// old ones — and rename-over-existing costs extra journal work), and
/// dirty pages from the previous iteration are drained (`sync`) before
/// the clock starts so a durable barrier pays for its own writes, not an
/// inherited backlog.
fn time_fresh_store_ms(
    dir: &std::path::Path,
    label: &str,
    iters: usize,
    f: impl Fn(&edde_nn::checkpoint::FsStore),
) -> f64 {
    let mut best = f64::INFINITY;
    for i in 0..iters {
        let store = edde_nn::checkpoint::FsStore::open(dir.join(format!("{label}-{i}"))).unwrap();
        let _ = std::process::Command::new("sync").status();
        // Let the journal finish checkpointing the drained transactions;
        // a barrier issued right after `sync` returns still queues behind
        // them.
        std::thread::sleep(std::time::Duration::from_millis(200));
        let t0 = Instant::now();
        f(&store);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        if dt < best {
            best = dt;
        }
    }
    best
}

fn training_step(net: &mut Network, opt: &mut Sgd, x: &Tensor, labels: &[usize]) {
    let ce = CrossEntropy::new();
    net.zero_grad();
    let logits = net.train_forward(x, Mode::Train).unwrap();
    let out = ce.compute(&logits, labels, None).unwrap();
    net.backward(&out.grad_logits).unwrap();
    opt.step(net).unwrap();
}

fn run_suite(iters: usize) -> Vec<(String, f64)> {
    let mut results = Vec::new();
    let mut rng = StdRng::seed_from_u64(0);

    // -- matmul 256x256x256 (the acceptance-criteria workload) + variants --
    let a = rand_uniform(&[256, 256], -1.0, 1.0, &mut rng);
    let b = rand_uniform(&[256, 256], -1.0, 1.0, &mut rng);
    for threads in [1usize, 8] {
        set_num_threads(threads);
        let ms = time_min_ms(iters, || {
            black_box(matmul(black_box(&a), black_box(&b)).unwrap());
        });
        results.push((format!("matmul_256x256x256_t{threads}"), ms));
    }
    // The same workload with SIMD dispatch forced to the scalar backend —
    // the delta is the explicit-SIMD contribution in isolation. The RAII
    // scope restores automatic dispatch even if the timed closure panics.
    set_num_threads(1);
    let ms = {
        let _scalar = edde_tensor::simd::force_scalar_scope();
        time_min_ms(iters, || {
            black_box(matmul(black_box(&a), black_box(&b)).unwrap());
        })
    };
    results.push(("matmul_256x256x256_scalar_t1".into(), ms));
    set_num_threads(8);
    let ms = time_min_ms(iters, || {
        black_box(matmul_at_b(black_box(&a), black_box(&b)).unwrap());
    });
    results.push(("matmul_at_b_256_t8".into(), ms));
    let ms = time_min_ms(iters, || {
        black_box(matmul_a_bt(black_box(&a), black_box(&b)).unwrap());
    });
    results.push(("matmul_a_bt_256_t8".into(), ms));

    // -- conv2d forward + backward on a training-batch-like workload --
    let input = rand_uniform(&[32, 12, 12, 12], -1.0, 1.0, &mut rng);
    let weight = rand_uniform(&[12, 12, 3, 3], -0.5, 0.5, &mut rng);
    let ms = time_min_ms(iters, || {
        black_box(conv2d(black_box(&input), black_box(&weight), None, 1, 1).unwrap());
    });
    results.push(("conv2d_fwd_b32_c12_12x12_t8".into(), ms));
    let out = conv2d(&input, &weight, None, 1, 1).unwrap();
    let grad = rand_uniform(out.dims(), -1.0, 1.0, &mut rng);
    let ms = time_min_ms(iters, || {
        black_box(
            conv2d_backward(
                black_box(&input),
                black_box(&weight),
                black_box(&grad),
                1,
                1,
            )
            .unwrap(),
        );
    });
    results.push(("conv2d_bwd_b32_c12_12x12_t8".into(), ms));

    // -- whole training steps (mirror the criterion `train_step` group) --
    let net = resnet(
        &ResNetConfig {
            depth: 8,
            width: 12,
            in_channels: 3,
            num_classes: 10,
        },
        &mut rng,
    )
    .unwrap();
    let x = rand_uniform(&[16, 3, 12, 12], -1.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..16).map(|_| rng.random_range(0..10)).collect();
    let ms = time_min_ms(iters.min(10), || {
        let mut n = net.clone();
        let mut o = Sgd::new(0.1, 0.9, 1e-4);
        let t0 = Instant::now();
        training_step(&mut n, &mut o, black_box(&x), &labels);
        black_box(t0.elapsed());
    });
    results.push(("training_step_resnet8_b16_t8".into(), ms));

    let tnet = textcnn(&TextCnnConfig::small(300, 2), &mut rng).unwrap();
    let mut ids = Tensor::zeros(&[32, 20]);
    for v in ids.data_mut() {
        *v = rng.random_range(0..300) as f32;
    }
    let tlabels: Vec<usize> = (0..32).map(|i| i % 2).collect();
    let ms = time_min_ms(iters.min(10), || {
        let mut n = tnet.clone();
        let mut o = Sgd::new(0.1, 0.9, 1e-4);
        training_step(&mut n, &mut o, black_box(&ids), &tlabels);
    });
    results.push(("training_step_textcnn_b32_t8".into(), ms));

    // -- ensemble member inference (Eq. 16 fan-out) --
    let mut ens = edde_core::EnsembleModel::new();
    for s in 0..4 {
        let mut r = StdRng::seed_from_u64(s);
        ens.push(edde_nn::models::mlp(&[64, 256, 10], 0.0, &mut r), 1.0, "m");
    }
    let feats = rand_uniform(&[512, 64], -1.0, 1.0, &mut rng);
    let ms = time_min_ms(iters, || {
        black_box(ens.soft_targets(black_box(&feats)).unwrap());
    });
    results.push(("ensemble_predict_4xmlp_512_t8".into(), ms));

    // -- frozen serving vs per-request member cloning --
    // `ensemble_infer_t*` is the frozen engine: one shared immutable
    // ensemble, zero member cloning. The `_cloned_` baseline is what
    // serving cost before the freeze: clone every member for the request
    // (the pre-refactor `&mut` path forced a private copy per concurrent
    // caller). Both produce bit-identical outputs.
    let frozen = std::sync::Arc::new(ens.freeze());
    for threads in [1usize, 8] {
        set_num_threads(threads);
        let ms = time_min_ms(iters, || {
            black_box(frozen.soft_targets(black_box(&feats)).unwrap());
        });
        eprintln!(
            "  ensemble_infer_t{threads}: {:.0} samples/s",
            512.0 * 1e3 / ms
        );
        results.push((format!("ensemble_infer_t{threads}"), ms));
        let ms = time_min_ms(iters, || {
            let private = black_box(&ens).clone();
            black_box(private.soft_targets(black_box(&feats)).unwrap());
        });
        results.push((format!("ensemble_infer_cloned_t{threads}"), ms));
    }

    // -- int8 serving: native quantized members through the same frozen
    // path. The int8 rows must stay at or below the f32 `ensemble_infer_*`
    // rows above: the quantized forward trades two f32 gemms for an i8
    // quantize + i8×i8→i32 gemm + scalar epilogue, and never dequantizes
    // weights back to f32.
    let quantized = std::sync::Arc::new(frozen.quantize().unwrap());
    for threads in [1usize, 8] {
        set_num_threads(threads);
        let ms = time_min_ms(iters, || {
            black_box(quantized.soft_targets(black_box(&feats)).unwrap());
        });
        eprintln!(
            "  ensemble_infer_int8_t{threads}: {:.0} samples/s",
            512.0 * 1e3 / ms
        );
        results.push((format!("ensemble_infer_int8_t{threads}"), ms));
    }
    set_num_threads(8);

    // -- bundle codec chains: encode/decode wall time and wire size for
    // the 4×(64→256→10) ensemble above. `eeb1-f32` is the legacy
    // uncompressed writer; the other rows are EEB2 with each preset
    // chain. Decode goes through the real load path (builder + import
    // for float chains, native int8 members for the quantized chain).
    {
        use edde_core::BundleCodec;
        let build = |_: &str, _: usize| -> edde_core::Result<edde_nn::Network> {
            let mut r = StdRng::seed_from_u64(0);
            Ok(edde_nn::models::mlp(&[64, 256, 10], 0.0, &mut r))
        };
        let chains: [(&str, Option<BundleCodec>); 4] = [
            ("eeb1-f32", None),
            ("f32", Some(BundleCodec::f32())),
            ("f16", Some(BundleCodec::f16())),
            ("int8", Some(BundleCodec::int8())),
        ];
        for (tag, codec) in chains {
            let encode = || match &codec {
                None => frozen.encode_v1().unwrap(),
                Some(c) => frozen.encode_with(c).unwrap(),
            };
            let payload = encode();
            results.push((format!("bundle_bytes_{tag}"), payload.len() as f64));
            let ms = time_min_ms(iters, || {
                black_box(encode());
            });
            results.push((format!("bundle_encode_ms_{tag}"), ms));
            let ms = time_min_ms(iters, || {
                black_box(
                    edde_core::FrozenEnsemble::decode(black_box(payload.clone()), &build).unwrap(),
                );
            });
            eprintln!("  bundle {tag}: {} bytes, decode {ms:.2} ms", payload.len());
            results.push((format!("bundle_decode_ms_{tag}"), ms));
        }
    }

    // -- table2-style precision sweep: lineup accuracy across codec
    // chains. One trained ensemble, re-read through each bundle chain, so
    // the deltas isolate what the codec costs the vote — the int8 row
    // executes natively through the quantized gemm, not dequantized. The
    // acceptance bar is an int8 delta within 1 accuracy point of f32.
    {
        use edde_core::BundleCodec;
        use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
        let data = gaussian_blobs(
            &GaussianBlobsConfig {
                classes: 4,
                dim: 16,
                train_per_class: 200,
                test_per_class: 300,
                spread: 2.4,
            },
            7,
        );
        let factory: edde_core::ModelFactory =
            std::sync::Arc::new(|r| Ok(edde_nn::models::mlp(&[16, 64, 4], 0.0, r)));
        let env = edde_core::ExperimentEnv::new(
            data,
            factory,
            edde_core::Trainer {
                batch_size: 16,
                weight_decay: 0.0,
                ..edde_core::Trainer::default()
            },
            0.1,
            7,
        );
        let run = edde_core::methods::Bagging::new(4, 4).run(&env).unwrap();
        let frozen = run.model.freeze();
        let acc_f32 = f64::from(frozen.accuracy(&env.data.test).unwrap()) * 100.0;
        eprintln!("  table2_mlp_acc_f32: {acc_f32:.2}%");
        results.push(("table2_mlp_acc_f32_pct".into(), acc_f32));
        let build = |_: &str, _: usize| -> edde_core::Result<edde_nn::Network> {
            let mut r = StdRng::seed_from_u64(0);
            Ok(edde_nn::models::mlp(&[16, 64, 4], 0.0, &mut r))
        };
        for (tag, codec) in [("f16", BundleCodec::f16()), ("int8", BundleCodec::int8())] {
            let payload = frozen.encode_with(&codec).unwrap();
            let rt = edde_core::FrozenEnsemble::decode(payload, &build).unwrap();
            let acc = f64::from(rt.accuracy(&env.data.test).unwrap()) * 100.0;
            eprintln!(
                "  table2_mlp_acc_{tag}: {acc:.2}% (delta {:.2} pt)",
                acc_f32 - acc
            );
            results.push((format!("table2_mlp_acc_{tag}_delta_pt"), acc_f32 - acc));
        }
    }

    // -- independent-member training: sequential vs concurrent members --
    // Same 8-thread budget both ways; the sequential run spends it inside
    // tensor ops, the parallel run spends it across members (bit-identical
    // results either way — see edde-core's parallel_training tests).
    let env = bagging_env();
    let bag_iters = iters.min(3);
    let ms = time_min_ms(bag_iters, || {
        black_box(
            edde_core::methods::Bagging::new(4, 2)
                .sequential()
                .run(black_box(&env))
                .unwrap(),
        );
    });
    results.push(("bagging_4xmlp_seq_t8".into(), ms));
    let ms = time_min_ms(bag_iters, || {
        black_box(
            edde_core::methods::Bagging::new(4, 2)
                .run(black_box(&env))
                .unwrap(),
        );
    });
    results.push(("bagging_4xmlp_par_t8".into(), ms));

    // -- epoch-granular checkpoint overhead (TrainLoop persistence) --
    // Timed at event granularity off the TrainEvent stream rather than as
    // a whole-run A/B: on a shared box, scheduler/cgroup stalls inside a
    // 100ms+ run swamp a single-digit-percent effect, while the minimum
    // over many short intervals dodges them. The boundary order pins the
    // brackets exactly: EpochStarted -> EpochCompleted is pure epoch
    // compute, and EpochCompleted -> the next CheckpointWritten is the
    // whole persist path (state export, encoding, checksum, store write).
    // The derived percentage is the acceptance metric: per-epoch
    // checkpointing must cost well under 5% of epoch wall time.
    set_num_threads(1);
    let env = train_env();
    let schedule = edde_nn::optim::LrSchedule::paper_step(0.1, 6);
    let base_net = (env.factory)(&mut StdRng::seed_from_u64(1)).unwrap();
    let dir = std::env::temp_dir().join(format!("edde-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        use edde_nn::checkpoint::CheckpointStore;
        let store = edde_nn::checkpoint::FsStore::open(&dir).unwrap();
        let mut epoch_ms = f64::INFINITY;
        let mut write_ms = f64::INFINITY;
        for _ in 0..7 {
            // A leftover progress record would short-circuit the run into
            // a resume; clear it so every iteration trains all 6 epochs.
            let _ = store.remove("member-0-progress");
            let mut net = base_net.clone();
            let mut last: Option<(char, Instant)> = None;
            let mut observer = |ev: edde_core::TrainEvent<'_>| {
                let now = Instant::now();
                match ev {
                    edde_core::TrainEvent::EpochStarted { .. } => last = Some(('s', now)),
                    edde_core::TrainEvent::EpochCompleted { .. } => {
                        if let Some(('s', t)) = last {
                            epoch_ms = epoch_ms.min(now.duration_since(t).as_secs_f64() * 1e3);
                        }
                        last = Some(('c', now));
                    }
                    edde_core::TrainEvent::CheckpointWritten { .. } => {
                        if let Some(('c', t)) = last {
                            write_ms = write_ms.min(now.duration_since(t).as_secs_f64() * 1e3);
                        }
                        last = None;
                    }
                    _ => last = None,
                }
                Ok(())
            };
            black_box(
                edde_core::TrainLoop::new(&env.trainer, &env.data.train, &schedule, 6)
                    .checkpoint(edde_core::EpochCheckpoints {
                        store: &store,
                        key: "member-0-progress".into(),
                        member: 0,
                        fingerprint: 0,
                        every: 1,
                        sharded: false,
                        config: edde_core::EddeConfig::default(),
                    })
                    .observe(&mut observer)
                    .run(&mut net, edde_core::TrainRng::PerEpoch { seed: 0xBEEF })
                    .unwrap(),
            );
        }
        results.push(("train_mlp_epoch_t1".into(), epoch_ms));
        results.push(("epoch_ckpt_write_ms".into(), write_ms));
        results.push((
            "epoch_ckpt_overhead_pct".into(),
            100.0 * write_ms / epoch_ms,
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);

    // -- sharded bundle storage: group-commit writes + lazy loading --
    // The write comparison is durability-bound, not compute-bound: the
    // whole-blob baseline is what a training session does today — one
    // durable (fsynced) store write per member, so 32 journal barriers —
    // while the sharded path writes every chunk and index with relaxed
    // durability and commits the whole bundle with a single durable root
    // record. On ext4 (data=ordered) that one fsync still pays the data
    // writeback of every relaxed chunk, so the win is the ~31 saved
    // journal barriers — which is why each timed iteration writes to a
    // fresh key space after draining writeback (`sync`): rewriting keys
    // in a dirty page cache measures the backlog, not the save. The
    // t1/t8 rows additionally show the chunk-sealing fan-out, which only
    // helps when real cores back the pool, so the speedup row compares
    // the baseline against the best sharded config on this host.
    {
        const SHARD_MEMBERS: u64 = 32;
        let mut frozen = edde_core::FrozenEnsemble::new();
        for s in 0..SHARD_MEMBERS {
            let mut r = StdRng::seed_from_u64(s);
            frozen.push(
                std::sync::Arc::new(edde_nn::models::mlp(&[64, 64, 10], 0.0, &mut r)),
                1.0,
                format!("m{s}"),
            );
        }
        let dir = std::env::temp_dir().join(format!("edde-bench-shard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // The durability rows are min-of-N over a shared, bursty virtio
        // disk: any single iteration can absorb a neighbor's journal
        // commit, so give the min more draws than the compute-bound rows
        // need (each draw is cheap — one ~0.6 MB save).
        let shard_iters = iters.clamp(8, 12);

        // Baseline: one durable per-member write (32 fsyncs).
        let blob_ms = time_fresh_store_ms(&dir, "blob", shard_iters, |store| {
            for (t, m) in frozen.members().iter().enumerate() {
                edde_nn::checkpoint::save_to_store(
                    store,
                    &format!("member-{t}"),
                    m.network().unwrap(),
                )
                .unwrap();
            }
        });
        results.push(("sharded_save_whole_blob_ms".into(), blob_ms));

        // Sharded group commit: relaxed chunk/index puts + 1 durable root.
        let codec = edde_core::BundleCodec::f32();
        set_num_threads(1);
        let t1_ms = time_fresh_store_ms(&dir, "t1", shard_iters, |store| {
            frozen
                .save_bundle_sharded_with(store, "root", &codec, false)
                .unwrap();
        });
        results.push(("sharded_save_t1_ms".into(), t1_ms));
        set_num_threads(8);
        let t8_ms = time_fresh_store_ms(&dir, "t8", shard_iters, |store| {
            frozen
                .save_bundle_sharded_with(store, "root", &codec, true)
                .unwrap();
        });
        results.push(("sharded_save_t8_ms".into(), t8_ms));
        let best_ms = t1_ms.min(t8_ms);
        results.push(("sharded_save_speedup".into(), blob_ms / best_ms));
        eprintln!(
            "  sharded_save: whole-blob {blob_ms:.3} ms, sharded t1 {t1_ms:.3} ms, \
             t8 {t8_ms:.3} ms ({:.2}x)",
            blob_ms / best_ms
        );

        // Lazy loading: open (root + indexes only), first single-member
        // predict, and the full materialization an eager load pays.
        let bundle_dir = dir.join("bundle");
        let store = edde_nn::checkpoint::FsStore::open(&bundle_dir).unwrap();
        set_num_threads(1);
        frozen
            .save_bundle_sharded_with(&store, "root", &codec, false)
            .unwrap();
        let build: edde_core::NetworkBuilder = std::sync::Arc::new(|_: &str, _: usize| {
            let mut r = StdRng::seed_from_u64(0);
            Ok(edde_nn::models::mlp(&[64, 64, 10], 0.0, &mut r))
        });
        let store = std::sync::Arc::new(store);
        let open_ms = time_min_ms(shard_iters, || {
            black_box(
                edde_core::FrozenEnsemble::open_sharded(store.clone(), "root", build.clone())
                    .unwrap(),
            );
        });
        results.push(("sharded_open_ms".into(), open_ms));
        let x = Tensor::ones(&[1, 64]);
        let mut resident = 0usize;
        let first_ms = time_min_ms(shard_iters, || {
            let sharded =
                edde_core::FrozenEnsemble::open_sharded(store.clone(), "root", build.clone())
                    .unwrap();
            black_box(sharded.soft_targets_prefix(&x, 1).unwrap());
            resident = sharded.resident_members();
        });
        results.push(("sharded_first_predict_ms".into(), first_ms));
        results.push(("sharded_resident_members".into(), resident as f64));
        let full_ms = time_min_ms(shard_iters, || {
            let sharded =
                edde_core::FrozenEnsemble::open_sharded(store.clone(), "root", build.clone())
                    .unwrap();
            black_box(sharded.materialize().unwrap());
        });
        results.push(("sharded_load_full_ms".into(), full_ms));
        eprintln!(
            "  sharded_load: open {open_ms:.3} ms, first predict {first_ms:.3} ms \
             ({resident}/{SHARD_MEMBERS} resident), full {full_ms:.3} ms"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- serving core: closed-loop latency + open-loop overload sweep --
    // Closed loop: a fixed client fleet, one outstanding request each, so
    // the latency distribution reflects queueing + batching + inference
    // with no admission pressure. Open loop: back-to-back bursts past the
    // queue capacity, so admission control and the shed tiers engage; the
    // goodput row is throughput at that offered load.
    set_num_threads(8);
    serve_suite(iters, &mut results);

    // -- streaming evaluation: fixed-memory folds over an unbounded
    // drifted stream. Rows: throughput of the one-pass stream_evaluate
    // reducer, the fixed-buffer peak-RSS proxy (resident bytes per scored
    // batch, independent of stream length), and disagreement-AUROC of the
    // frozen lineup on an unseen-families drift stream.
    stream_suite(iters, &mut results);

    set_num_threads(0);
    results
}

fn stream_suite(iters: usize, results: &mut Vec<(String, f64)>) {
    use edde_core::methods::Edde;
    use edde_core::stream::{disagreement_auroc, stream_evaluate};
    use edde_core::{ExperimentEnv, ModelFactory, Trainer};
    use edde_data::stream::GaussianStream;
    use edde_data::synth::{gaussian_blobs, DriftSpec, GaussianBlobsConfig};

    let cfg = GaussianBlobsConfig {
        classes: 8,
        dim: 16,
        train_per_class: 20,
        test_per_class: 1,
        spread: 0.8,
    };
    // A briefly trained EDDE lineup: random members disagree everywhere,
    // which collapses the AUROC row to chance — the detection signal only
    // exists once members agree on the training distribution.
    let factory: ModelFactory =
        std::sync::Arc::new(|r| Ok(edde_nn::models::mlp(&[16, 64, 8], 0.0, r)));
    let e = ExperimentEnv::new(
        gaussian_blobs(&cfg, 11),
        factory,
        Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        },
        0.1,
        11,
    );
    let f = Edde::new(4, 3, 2, 0.4, 0.5)
        .run(&e)
        .expect("edde lineup")
        .model
        .freeze();
    let samples = if iters < 20 { 4_000 } else { 20_000 };

    let t0 = Instant::now();
    let mut src = GaussianStream::new(&cfg, 11, samples, 256);
    let report = stream_evaluate(&f, &mut src).expect("stream evaluate");
    let wall = t0.elapsed().as_secs_f64();
    let rows_per_s = report.rows as f64 / wall;
    let peak_kb = report.peak_batch_bytes as f64 / 1024.0;
    eprintln!(
        "  stream_eval: {:.0} rows/s, peak {:.1} KiB over {} rows",
        rows_per_s, peak_kb, report.rows
    );
    results.push(("stream_eval_rows_per_s".into(), rows_per_s));
    results.push(("stream_eval_peak_kib".into(), peak_kb));

    let mut neg = GaussianStream::new(&cfg, 11, samples, 256);
    let mut pos = GaussianStream::with_drift(&cfg, 11, samples, 256, DriftSpec::UnseenFamilies);
    let auroc = disagreement_auroc(&f, &mut neg, &mut pos).expect("disagreement auroc");
    eprintln!("  stream_ood: disagreement AUROC {auroc:.4} (unseen families)");
    results.push(("stream_ood_auroc".into(), f64::from(auroc)));
}

fn serve_frozen() -> edde_core::FrozenEnsemble {
    let mut f = edde_core::FrozenEnsemble::new();
    for s in 0..4 {
        let mut r = StdRng::seed_from_u64(s);
        f.push(
            std::sync::Arc::new(edde_nn::models::mlp(&[64, 256, 10], 0.0, &mut r)),
            1.0,
            "m",
        );
    }
    f
}

fn serve_suite(iters: usize, results: &mut Vec<(String, f64)>) {
    use edde_serve::{Priority, ServeConfig, ServeCore, ServeError, SubmitOptions};
    use std::time::Duration;

    let core = std::sync::Arc::new(ServeCore::new(
        serve_frozen(),
        ServeConfig {
            queue_capacity: 128,
            max_batch_rows: 64,
            batch_deadline: Duration::from_micros(200),
            workers: 2,
            ..ServeConfig::default()
        },
    ));

    // closed loop
    let clients = 8usize;
    let per_client = if iters < 20 { 15 } else { 40 };
    let t0 = Instant::now();
    let mut fleet = Vec::new();
    for c in 0..clients {
        let core = std::sync::Arc::clone(&core);
        fleet.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(100 + c as u64);
            let mut latencies = Vec::with_capacity(per_client);
            for _ in 0..per_client {
                let x = rand_uniform(&[2, 64], -1.0, 1.0, &mut rng);
                let h = core
                    .submit(
                        x,
                        SubmitOptions::new().with_timeout(Duration::from_secs(10)),
                    )
                    .expect("closed-loop fleet stays under capacity");
                let p = h.wait().expect("closed-loop request served");
                latencies.push(p.latency().as_secs_f64() * 1e3);
            }
            latencies
        }));
    }
    let mut latencies: Vec<f64> = fleet.into_iter().flat_map(|h| h.join().unwrap()).collect();
    let wall = t0.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let total = (clients * per_client) as f64;
    eprintln!(
        "  serve_closed: p50 {:.3} ms, p99 {:.3} ms, {:.0} req/s",
        pct(0.50),
        pct(0.99),
        total / wall
    );
    results.push(("serve_closed_p50_ms".into(), pct(0.50)));
    results.push(("serve_closed_p99_ms".into(), pct(0.99)));
    results.push(("serve_closed_p999_ms".into(), pct(0.999)));
    results.push(("serve_closed_rps".into(), total / wall));

    // open loop: offered load beyond capacity; rejections are typed, the
    // served remainder is the goodput at that offered load.
    for &burst in &[64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(7);
        let t0 = Instant::now();
        let mut handles = Vec::new();
        let mut rejected = 0u64;
        for i in 0..burst {
            let x = rand_uniform(&[1, 64], -1.0, 1.0, &mut rng);
            let priority = match i % 3 {
                0 => Priority::Low,
                1 => Priority::Normal,
                _ => Priority::High,
            };
            match core.submit(
                x,
                SubmitOptions::new()
                    .with_priority(priority)
                    .with_timeout(Duration::from_millis(500)),
            ) {
                Ok(h) => handles.push(h),
                Err(ServeError::Overloaded { .. } | ServeError::Shed { .. }) => rejected += 1,
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        let mut served = 0u64;
        for h in handles {
            match h.wait() {
                Ok(_) => served += 1,
                Err(ServeError::DeadlineExceeded { .. }) => {}
                Err(e) => panic!("unexpected serve error: {e}"),
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        let _ = rejected;
        results.push((
            format!("serve_open_burst{burst}_goodput_rps"),
            served as f64 / wall,
        ));
        results.push((
            format!("serve_open_burst{burst}_served_pct"),
            100.0 * served as f64 / burst as f64,
        ));
    }
    core.close();
}

/// A single-member training workload big enough that epoch compute, not
/// fixed per-write costs, dominates the checkpoint-overhead comparison.
fn train_env() -> edde_core::ExperimentEnv {
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    let data = gaussian_blobs(
        &GaussianBlobsConfig {
            classes: 3,
            dim: 64,
            train_per_class: 1000,
            test_per_class: 20,
            spread: 0.8,
        },
        11,
    );
    let factory: edde_core::ModelFactory =
        std::sync::Arc::new(|r| Ok(edde_nn::models::mlp(&[64, 384, 192, 3], 0.0, r)));
    edde_core::ExperimentEnv::new(
        data,
        factory,
        edde_core::Trainer {
            batch_size: 32,
            weight_decay: 0.0,
            ..edde_core::Trainer::default()
        },
        0.1,
        11,
    )
}

fn bagging_env() -> edde_core::ExperimentEnv {
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    let data = gaussian_blobs(
        &GaussianBlobsConfig {
            classes: 3,
            dim: 16,
            train_per_class: 60,
            test_per_class: 20,
            spread: 0.8,
        },
        7,
    );
    let factory: edde_core::ModelFactory =
        std::sync::Arc::new(|r| Ok(edde_nn::models::mlp(&[16, 64, 3], 0.0, r)));
    edde_core::ExperimentEnv::new(
        data,
        factory,
        edde_core::Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..edde_core::Trainer::default()
        },
        0.1,
        7,
    )
}

fn json_results(results: &[(String, f64)]) -> String {
    let body: Vec<String> = results
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v:.3}"))
        .collect();
    format!("{{\n{}\n  }}", body.join(",\n"))
}

/// Pulls `"name": number` pairs back out of a results file this binary
/// wrote earlier (line-oriented; only our own format needs to parse).
fn parse_results(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some((key, val)) = line.split_once(':') {
            let key = key.trim().trim_matches('"');
            if let Ok(v) = val.trim().parse::<f64>() {
                if key.contains('_') {
                    out.push((key.to_string(), v));
                }
            }
        }
    }
    out
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = get("--out");
    let baseline_path = get("--baseline");
    let history_path = get("--history");
    let label = get("--label").unwrap_or_else(|| "current kernels".to_string());
    let iters = if args.iter().any(|a| a == "--quick") {
        5
    } else {
        20
    };

    eprintln!("benchmarking ({iters} iterations per workload)...");
    let results = run_suite(iters);
    for (k, v) in &results {
        eprintln!("  {k:<36} {v:>10.3} ms");
    }

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut doc = String::new();
    doc.push_str("{\n  \"schema\": \"edde-bench-tensor/v1\",\n");
    doc.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    doc.push_str(&format!("  \"commit\": \"{}\",\n", git_commit()));
    doc.push_str(&format!("  \"label\": \"{label}\",\n"));
    doc.push_str(&format!("  \"results_ms\": {}", json_results(&results)));

    if let Some(bp) = baseline_path {
        let text = std::fs::read_to_string(&bp)
            .unwrap_or_else(|e| panic!("cannot read baseline {bp}: {e}"));
        let base = parse_results(&text);
        let mut speedups = Vec::new();
        for (k, cur) in &results {
            if let Some((_, before)) = base.iter().find(|(bk, _)| bk == k) {
                if *cur > 0.0 {
                    speedups.push((k.clone(), before / cur));
                }
            }
        }
        doc.push_str(",\n  \"baseline\": ");
        // Embed the baseline file verbatim, indented to nest as an object.
        let indented: Vec<String> = text.trim().lines().map(|l| format!("  {l}")).collect();
        doc.push_str(indented.join("\n").trim_start());
        doc.push_str(",\n  \"speedup_vs_baseline\": ");
        doc.push_str(&json_results(&speedups));
    }
    doc.push_str("\n}\n");

    match out_path {
        Some(p) => {
            std::fs::write(&p, &doc).unwrap_or_else(|e| panic!("cannot write {p}: {e}"));
            eprintln!("wrote {p}");
        }
        None => println!("{doc}"),
    }

    if let Some(hp) = history_path {
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let body: Vec<String> = results
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v:.3}"))
            .collect();
        let line = format!(
            "{{\"schema\": \"edde-bench-tensor-history/v1\", \"unix_time\": {unix_time}, \
             \"commit\": \"{}\", \"label\": \"{label}\", \"host_cpus\": {cpus}, \
             \"config\": {}, \"results_ms\": {{{}}}}}\n",
            git_commit(),
            edde_core::EddeConfig::from_env().to_json(),
            body.join(", ")
        );
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&hp)
            .unwrap_or_else(|e| panic!("cannot open history {hp}: {e}"));
        f.write_all(line.as_bytes())
            .unwrap_or_else(|e| panic!("cannot append history {hp}: {e}"));
        eprintln!("appended {hp}");
    }
}
