//! Regenerates **Table II** — ensemble test accuracy on the CV task, for
//! both architectures on both image datasets, every method at an equal
//! epoch budget per group.

use edde_bench::harness::{cv_methods, run_lineup};
use edde_bench::workloads::{cifar100_env, cifar10_env, CvArch, Scale};
use edde_core::report::summary_table;

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let only_resnet = args.iter().any(|a| a == "--resnet-only");
    let only_densenet = args.iter().any(|a| a == "--densenet-only");
    println!("== Table II: test accuracy on the CV task ==");
    println!("(SynthCIFAR stands in for CIFAR; budgets are equal per group — see DESIGN.md)\n");
    for arch in [CvArch::ResNet, CvArch::DenseNet] {
        if (only_resnet && arch == CvArch::DenseNet) || (only_densenet && arch == CvArch::ResNet) {
            continue;
        }
        for (dataset, env) in [
            ("SynthC10", cifar10_env(arch, 42)),
            ("SynthC100", cifar100_env(arch, 42)),
        ] {
            eprintln!("[{} / {dataset}]", arch.name());
            let methods = cv_methods(scale);
            let summaries = run_lineup(&methods, &env).expect("table II lineup");
            println!("--- {} on {dataset} ---", arch.name());
            println!("{}", summary_table(&summaries));
        }
    }
}
