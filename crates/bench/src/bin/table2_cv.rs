//! Regenerates **Table II** — ensemble test accuracy on the CV task, for
//! both architectures on both image datasets, every method at an equal
//! epoch budget per group.
//!
//! `--checkpoint-dir DIR` makes the sequential methods resumable: each
//! (architecture, dataset, method) cell persists its run state under
//! `DIR/<arch>-<dataset>/<method>/`, so a killed run re-invoked with the
//! same flag restores every completed member and continues from the first
//! missing one instead of retraining the whole table.

use edde_bench::harness::{cv_methods, run_lineup};
use edde_bench::workloads::{cifar100_env, cifar10_env, CvArch, Scale};
use edde_core::report::summary_table;
use std::path::PathBuf;

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let only_resnet = args.iter().any(|a| a == "--resnet-only");
    let only_densenet = args.iter().any(|a| a == "--densenet-only");
    let checkpoint_dir: Option<PathBuf> =
        args.iter().position(|a| a == "--checkpoint-dir").map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .map(PathBuf::from)
                .expect("--checkpoint-dir requires a directory argument")
        });
    println!("== Table II: test accuracy on the CV task ==");
    println!("(SynthCIFAR stands in for CIFAR; budgets are equal per group — see DESIGN.md)\n");
    for arch in [CvArch::ResNet, CvArch::DenseNet] {
        if (only_resnet && arch == CvArch::DenseNet) || (only_densenet && arch == CvArch::ResNet) {
            continue;
        }
        for (dataset, env) in [
            ("SynthC10", cifar10_env(arch, 42)),
            ("SynthC100", cifar100_env(arch, 42)),
        ] {
            eprintln!("[{} / {dataset}]", arch.name());
            let methods = cv_methods(scale);
            // Each table cell gets its own store subtree so resuming one
            // cell can never pick up another's manifest.
            let arch_tag = if arch == CvArch::ResNet {
                "resnet"
            } else {
                "densenet"
            };
            let cell_dir = checkpoint_dir
                .as_ref()
                .map(|d| d.join(format!("{arch_tag}-{dataset}")));
            let summaries =
                run_lineup(&methods, &env, cell_dir.as_deref()).expect("table II lineup");
            println!("--- {} on {dataset} ---", arch.name());
            println!("{}", summary_table(&summaries));
        }
    }
}
