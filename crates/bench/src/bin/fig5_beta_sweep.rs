//! Regenerates **Figure 5** — the β-selection probe of §IV-B: the student's
//! mean early-epoch accuracy on the fold its teacher saw (fold n−1) versus
//! the fold nobody saw (fold n), as β sweeps from 1.0 down to 0.1, for both
//! CV architectures. Also prints the β the adaptive rule would select.

use edde_bench::workloads::{cifar100_env, CvArch, Scale};
use edde_core::report::Table;
use edde_core::transfer::{beta_probe, select_beta, BetaProbeConfig};
use edde_data::KFold;

fn main() {
    let scale = Scale::from_args();
    println!("== Figure 5: student accuracy on the seen vs unseen fold as beta varies ==");
    println!("(6 folds as in the paper's CIFAR-100 experiment)\n");
    for arch in [CvArch::ResNet, CvArch::DenseNet] {
        let env = cifar100_env(arch, 42);
        let mut rng = env.rng(0xBE7A);
        // the paper splits the *training set* into 6 folds
        let kfold = KFold::new(env.data.train.len(), 6, &mut rng);
        let split = kfold.beta_split(&env.data.train).expect("beta split");
        let config = BetaProbeConfig {
            teacher_epochs: scale.epochs(20),
            probe_epochs: scale.epochs(5),
            lr: env.base_lr / 2.0,
            betas: vec![1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1],
            gap_threshold: 0.02,
        };
        let factory = env.factory.clone();
        let points = beta_probe(
            &move |rng| (factory)(rng),
            &split,
            &env.trainer,
            &config,
            &mut rng,
        )
        .expect("beta probe");
        println!("--- {} ---", arch.name());
        let mut table = Table::new(&[
            "beta",
            "acc on fold n-1 (seen)",
            "acc on fold n (unseen)",
            "gap",
        ]);
        for p in &points {
            table.add_row(&[
                format!("{:.1}", p.beta),
                format!("{:.4}", p.seen_acc),
                format!("{:.4}", p.unseen_acc),
                format!("{:+.4}", p.seen_acc - p.unseen_acc),
            ]);
        }
        println!("{}", table.render());
        let chosen = select_beta(&points, config.gap_threshold).expect("select beta");
        println!("adaptive rule selects beta = {chosen:.1}\n");
    }
}
