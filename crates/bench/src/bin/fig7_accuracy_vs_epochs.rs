//! Regenerates **Figure 7** — ensemble test accuracy as a function of
//! cumulative training epochs, on the CIFAR-100 stand-in, for both
//! architectures. Each method's accuracy is re-evaluated every time a
//! member/snapshot lands, exactly the series the paper plots.
//!
//! `--checkpoint-dir DIR` makes the sequential methods resumable under
//! `DIR/<arch>/<method>/` — per-architecture subtrees, because the model
//! factory is not part of the run fingerprint.

use edde_bench::harness::{cv_methods, run_method};
use edde_bench::workloads::{cifar100_env, CvArch, Scale};
use edde_core::methods::{train_members_in_order, SingleModel};
use std::fmt::Write as _;
use std::path::PathBuf;

fn main() {
    let scale = Scale::from_args();
    println!("== Figure 7: ensemble accuracy vs cumulative training epochs ==");
    println!("(SynthCIFAR-100; series printed as epoch:accuracy pairs)\n");
    let args: Vec<String> = std::env::args().collect();
    let only_resnet = args.iter().any(|a| a == "--resnet-only");
    let checkpoint_dir: Option<PathBuf> =
        args.iter().position(|a| a == "--checkpoint-dir").map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .map(PathBuf::from)
                .expect("--checkpoint-dir requires a directory argument")
        });
    let archs: Vec<CvArch> = [CvArch::ResNet, CvArch::DenseNet]
        .into_iter()
        .filter(|&a| !(only_resnet && a == CvArch::DenseNet))
        .collect();
    // The two architectures are fully independent runs (separate envs and
    // checkpoint subtrees, no shared RNG stream), so they train
    // concurrently over the worker pool; each one's report is committed in
    // architecture order, keeping stdout identical to the sequential loop.
    train_members_in_order(
        0,
        archs.len(),
        true,
        |i| {
            let arch = archs[i];
            let env = cifar100_env(arch, 42);
            eprintln!("[{}]", arch.name());
            let arch_tag = if arch == CvArch::ResNet {
                "resnet"
            } else {
                "densenet"
            };
            let arch_dir = checkpoint_dir.as_ref().map(|d| d.join(arch_tag));
            let mut methods = cv_methods(scale);
            // give the single model a per-epoch curve like the paper's plot
            methods[0] = Box::new(SingleModel {
                epochs: scale.epochs(edde_bench::workloads::CV_CYCLE)
                    * scale.members(edde_bench::workloads::CV_MEMBERS),
                trace_every: scale.epochs(4),
            });
            let mut report = format!("--- {} ---\n", arch.name());
            for method in &methods {
                let (_, run) = run_method(method.as_ref(), &env, arch_dir.as_deref())?;
                let _ = write!(report, "{:<24}", method.name());
                for p in &run.trace {
                    let _ = write!(report, " {}:{:.4}", p.cumulative_epochs, p.test_accuracy);
                }
                report.push('\n');
            }
            report.push('\n');
            Ok(report)
        },
        |_, report| {
            print!("{report}");
            Ok(())
        },
    )
    .expect("fig7 run");
}
