//! Regenerates **Table IV** — the influence of diversity: training epochs,
//! average member accuracy, ensemble accuracy, increased accuracy, and the
//! Eq. 7 diversity for Snapshot, EDDE, and AdaBoost.NC on the CIFAR-100
//! stand-in. As in the paper, Snapshot and AdaBoost.NC get a ~1.6× larger
//! epoch budget than EDDE (400 vs 250).

use edde_bench::harness::run_method;
use edde_bench::workloads::{cifar100_env, CvArch, Scale, CV_CYCLE, CV_EDDE_LATER};
use edde_core::methods::{AdaBoostNc, Edde, EnsembleMethod, Snapshot};
use edde_core::report::{pct, Table};

fn main() {
    let scale = Scale::from_args();
    let env = cifar100_env(CvArch::ResNet, 42);
    // paper: Snapshot/NC at 400 epochs (10 members x 40), EDDE at 250
    // (40 + 7 x 30); here scaled to 6x20=120 vs 20+5x15=95.
    let cycle = scale.epochs(CV_CYCLE);
    let long_members = scale.members(6);
    let edde_members = scale.members(6);
    let methods: Vec<Box<dyn EnsembleMethod>> = vec![
        Box::new(Snapshot::new(long_members, cycle)),
        Box::new(Edde::new(
            edde_members,
            cycle,
            scale.epochs(CV_EDDE_LATER),
            0.1,
            0.7,
        )),
        Box::new(AdaBoostNc::new(long_members, cycle)),
    ];
    println!("== Table IV: the influence of diversity (SynthCIFAR-100, ResNet) ==\n");
    let mut table = Table::new(&[
        "Method",
        "Training epochs",
        "Average accuracy",
        "Ensemble accuracy",
        "Increased accuracy",
        "Diversity",
    ]);
    for method in &methods {
        let (s, _) = run_method(method.as_ref(), &env, None).expect("table IV run");
        table.add_row(&[
            s.name.clone(),
            s.total_epochs.to_string(),
            pct(s.average_accuracy),
            pct(s.ensemble_accuracy),
            pct(s.increased_accuracy),
            s.diversity.map_or("-".into(), |d| format!("{d:.4}")),
        ]);
    }
    println!("{}", table.render());
}
