//! Regenerates **Table VI** — the ablation study: full EDDE versus EDDE
//! with a normal loss (γ = 0), EDDE transferring all weights, EDDE
//! transferring none, and AdaBoost.NC with full-weight transfer. As in the
//! paper, the AdaBoost.NC variant gets a larger budget (400 vs 200 epochs,
//! here scaled proportionally).

use edde_bench::harness::run_method;
use edde_bench::workloads::{
    cifar100_env, CvArch, Scale, CV_BETA, CV_CYCLE, CV_EDDE_LATER, CV_EDDE_MEMBERS, CV_GAMMA,
};
use edde_core::methods::{AdaBoostNc, Edde, EnsembleMethod, TransferMode};
use edde_core::report::{pct, Table};

fn main() {
    let scale = Scale::from_args();
    let env = cifar100_env(CvArch::ResNet, 42);
    let members = scale.members(CV_EDDE_MEMBERS);
    let first = scale.epochs(CV_CYCLE);
    let later = scale.epochs(CV_EDDE_LATER);
    let base = Edde::new(members, first, later, CV_GAMMA, CV_BETA);
    let methods: Vec<Box<dyn EnsembleMethod>> = vec![
        Box::new(base.clone()),
        Box::new(Edde {
            gamma: 0.0,
            ..base.clone()
        }),
        Box::new(Edde {
            transfer: TransferMode::All,
            ..base.clone()
        }),
        Box::new(Edde {
            transfer: TransferMode::None,
            ..base.clone()
        }),
        // paper gives AdaBoost.NC 2x the budget (400 vs 200 epochs)
        Box::new(AdaBoostNc::with_transfer(
            scale.members(6),
            scale.epochs(CV_CYCLE),
        )),
    ];
    println!("== Table VI: ablation study (SynthCIFAR-100, ResNet) ==\n");
    let mut table = Table::new(&[
        "Method",
        "Ensemble accuracy",
        "Diversity",
        "Average accuracy",
    ]);
    for method in &methods {
        let (s, _) = run_method(method.as_ref(), &env, None).expect("table VI run");
        table.add_row(&[
            s.name.clone(),
            pct(s.ensemble_accuracy),
            s.diversity.map_or("-".into(), |d| format!("{d:.4}")),
            pct(s.average_accuracy),
        ]);
    }
    println!("{}", table.render());
}
