//! OOD / drift detection by ensemble disagreement, evaluated streaming.
//!
//! Trains Single Model, Bagging, and EDDE on the Gaussian-blobs task,
//! then scores **unbounded drifted streams** ([`GaussianStream`]) against
//! an in-distribution stream using the per-sample disagreement score
//! (α-weighted variance of member votes — the Eq. 2 diversity quantity
//! read per sample). Detection quality is reported as AUROC per drift
//! family, computed in fixed memory (binned ranks); the peak resident
//! evaluation bytes per method are reported alongside, and are `O(batch)`
//! no matter how long the streams run.
//!
//! Drift families:
//!
//! * `unseen-families` — class centers redrawn from a salted seed the
//!   ensemble never trained on;
//! * `corrupted-pixels` — training-distribution rows with dead-pixel and
//!   additive-noise corruption at `EDDE_DRIFT_SEVERITY_PCT`% severity.
//!
//! Usage: `ood_eval [--quick]` (`--quick` shrinks budgets for CI).

use edde_core::methods::{Bagging, Edde, EnsembleMethod, SingleModel};
use edde_core::report::Table;
use edde_core::stream::{stream_disagreement, AurocAccumulator, MemberScorer};
use edde_core::{ExperimentEnv, ModelFactory, Result, Trainer};
use edde_data::stream::{stream_batch, GaussianStream};
use edde_data::synth::{gaussian_blobs, DriftSpec, GaussianBlobsConfig};
use edde_nn::models::mlp;
use std::sync::Arc;
use std::time::Instant;

/// The training task: big enough that members specialize, small enough
/// that the full lineup trains in seconds.
fn blob_config() -> GaussianBlobsConfig {
    GaussianBlobsConfig {
        classes: 4,
        dim: 8,
        train_per_class: 40,
        test_per_class: 20,
        spread: 0.8,
    }
}

const DATA_SEED: u64 = 71;

fn env() -> ExperimentEnv {
    let data = gaussian_blobs(&blob_config(), DATA_SEED);
    let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[8, 24, 4], 0.0, r)));
    ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        },
        0.1,
        DATA_SEED,
    )
}

fn methods(quick: bool) -> Vec<Box<dyn EnsembleMethod>> {
    let (members, epochs, later) = if quick { (4, 6, 4) } else { (5, 10, 8) };
    // γ = 0.4: the diversity-driven loss is the disagreement signal OOD
    // detection reads, so the detector wants it turned up relative to the
    // accuracy-tuned table runs; β = 0.5 keeps the transferred stack
    // shallow enough that members differ off-distribution.
    vec![
        Box::new(SingleModel::new(epochs)),
        Box::new(Bagging::new(members, epochs)),
        Box::new(Edde::new(members, epochs, later, 0.4, 0.5)),
    ]
}

/// Scores one method against one drift family: streams fresh
/// in-distribution samples as negatives and the drifted stream as
/// positives through [`stream_disagreement`], then reads the AUROC off
/// the fixed-size accumulator.
fn family_auroc(scorer: &dyn MemberScorer, samples: usize, spec: DriftSpec) -> Result<FamilyScore> {
    let cfg = blob_config();
    let batch = stream_batch();
    // Negatives draw from the training distribution but are *fresh*
    // samples (salted sample seed inside the stream), not the test split.
    let mut neg = GaussianStream::new(&cfg, DATA_SEED, samples, batch);
    let mut pos = GaussianStream::with_drift(&cfg, DATA_SEED, samples, batch, spec);
    let mut auroc = AurocAccumulator::new();
    let started = Instant::now();
    let neg_report = stream_disagreement(scorer, &mut neg, |s| auroc.add_negatives(s))?;
    let pos_report = stream_disagreement(scorer, &mut pos, |s| auroc.add_positives(s))?;
    let elapsed = started.elapsed().as_secs_f64();
    Ok(FamilyScore {
        auroc: auroc.auroc()?,
        mean_in: neg_report.mean_score,
        mean_drift: pos_report.mean_score,
        peak_bytes: neg_report.peak_batch_bytes.max(pos_report.peak_batch_bytes),
        rows_per_sec: (neg_report.rows + pos_report.rows) as f64 / elapsed.max(1e-9),
    })
}

struct FamilyScore {
    auroc: f32,
    mean_in: f32,
    mean_drift: f32,
    peak_bytes: usize,
    rows_per_sec: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 1_000 } else { 4_000 };
    let families = [DriftSpec::UnseenFamilies, DriftSpec::corruption_from_env()];
    let e = env();
    println!("== OOD detection by ensemble disagreement (streaming) ==\n");
    println!("negatives: {samples} fresh in-distribution rows; positives: {samples} drifted rows");
    println!(
        "stream batch: {} rows (EDDE_STREAM_BATCH)\n",
        stream_batch()
    );
    let mut table = Table::new(&[
        "Method",
        "Drift family",
        "AUROC",
        "Mean score (ID)",
        "Mean score (drift)",
        "Peak eval mem",
        "Rows/s",
    ]);
    for method in methods(quick) {
        let run = method.run(&e).expect("training run");
        for spec in families {
            let score = family_auroc(&run.model, samples, spec).expect("disagreement scoring");
            table.add_row(&[
                method.name(),
                spec.label().to_string(),
                format!("{:.4}", score.auroc),
                format!("{:.4}", score.mean_in),
                format!("{:.4}", score.mean_drift),
                format!("{:.1} KiB", score.peak_bytes as f64 / 1024.0),
                format!("{:.0}", score.rows_per_sec),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "AUROC = probability a drifted row outscores an in-distribution row \
         (0.5 = blind, 1.0 = perfect). Peak eval mem is the fixed-buffer \
         resident bound per scored batch: features + member soft targets + \
         scores — independent of stream length."
    );
}
