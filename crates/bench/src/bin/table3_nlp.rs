//! Regenerates **Table III** — ensemble test accuracy on the NLP task
//! (Text-CNN on the IMDB and MR stand-ins). EDDE runs at ~70% of the
//! baselines' epoch budget, reproducing the paper's claim that it reaches
//! the top accuracy in half the time.

use edde_bench::harness::{nlp_methods, run_lineup};
use edde_bench::workloads::{imdb_env, mr_env, Scale};
use edde_core::report::summary_table;

fn main() {
    let scale = Scale::from_args();
    println!("== Table III: test accuracy on the NLP task ==");
    println!("(SynthIMDB/SynthMR stand in for IMDB/MR — see DESIGN.md)\n");
    for (dataset, env) in [("SynthIMDB", imdb_env(42)), ("SynthMR", mr_env(42))] {
        eprintln!("[Text-CNN / {dataset}]");
        let methods = nlp_methods(scale);
        let summaries = run_lineup(&methods, &env, None).expect("table III lineup");
        println!("--- Text-CNN on {dataset} ---");
        println!("{}", summary_table(&summaries));
    }
}
