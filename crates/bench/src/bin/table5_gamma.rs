//! Regenerates **Table V** — EDDE's ensemble accuracy as γ (the strength of
//! the diversity-driven loss) varies over {0, 0.1, 0.3, 0.5, 1.0}, on the
//! CIFAR-100 stand-in with the ResNet preset.

use edde_bench::harness::run_method;
use edde_bench::workloads::{
    cifar100_env, CvArch, Scale, CV_BETA, CV_CYCLE, CV_EDDE_LATER, CV_EDDE_MEMBERS,
};
use edde_core::methods::Edde;
use edde_core::report::{pct, Table};

fn main() {
    let scale = Scale::from_args();
    let env = cifar100_env(CvArch::ResNet, 42);
    println!("== Table V: test accuracy with different gamma (SynthCIFAR-100, ResNet) ==\n");
    let mut table = Table::new(&["Method", "Parameter", "Ensemble accuracy", "Diversity"]);
    for gamma in [0.0f32, 0.1, 0.3, 0.5, 1.0] {
        let method = Edde::new(
            scale.members(CV_EDDE_MEMBERS),
            scale.epochs(CV_CYCLE),
            scale.epochs(CV_EDDE_LATER),
            gamma,
            CV_BETA,
        );
        let (s, _) = run_method(&method, &env, None).expect("table V run");
        table.add_row(&[
            "EDDE".into(),
            format!("gamma = {gamma}"),
            pct(s.ensemble_accuracy),
            s.diversity.map_or("-".into(), |d| format!("{d:.4}")),
        ]);
    }
    println!("{}", table.render());
}
