//! Regenerates **Figure 1** — the bias/variance position of each method's
//! base models at an equal training budget on the CIFAR-100 stand-in.
//!
//! Expected shape: Snapshot low bias / low variance; AdaBoost.NC high
//! variance / high bias; BANs in between; EDDE low bias *and* high
//! variance.
//!
//! `--checkpoint-dir DIR` makes the sequential methods resumable: each
//! method persists its run state under `DIR/<method>/`, so a killed run
//! re-invoked with the same flag restores every completed member and
//! continues from the first missing one.

use edde_bench::harness::run_method;
use edde_bench::workloads::{
    cifar100_env, CvArch, Scale, CV_BETA, CV_CYCLE, CV_EDDE_LATER, CV_EDDE_MEMBERS, CV_GAMMA,
    CV_MEMBERS,
};
use edde_core::bias_variance::bias_variance;
use edde_core::methods::{AdaBoostNc, Bans, Edde, EnsembleMethod, Snapshot};
use edde_core::report::Table;
use std::path::PathBuf;

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let checkpoint_dir: Option<PathBuf> =
        args.iter().position(|a| a == "--checkpoint-dir").map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .map(PathBuf::from)
                .expect("--checkpoint-dir requires a directory argument")
        });
    let env = cifar100_env(CvArch::ResNet, 42);
    let cycle = scale.epochs(CV_CYCLE);
    let members = scale.members(CV_MEMBERS);
    let methods: Vec<Box<dyn EnsembleMethod>> = vec![
        Box::new(AdaBoostNc::new(members, cycle)),
        Box::new(Bans::new(members, cycle)),
        Box::new(Snapshot::new(members, cycle)),
        Box::new(Edde::new(
            scale.members(CV_EDDE_MEMBERS),
            cycle,
            scale.epochs(CV_EDDE_LATER),
            CV_GAMMA,
            CV_BETA,
        )),
    ];
    println!("== Figure 1: bias and variance of each method's base models ==");
    println!("(equal training budget; both axes per DESIGN.md definitions)\n");
    let mut table = Table::new(&["Method", "Bias", "Variance", "Epochs"]);
    for method in &methods {
        let (s, run) =
            run_method(method.as_ref(), &env, checkpoint_dir.as_deref()).expect("fig1 run");
        let bv = bias_variance(&run.model, &env.data.test).expect("bias/variance");
        table.add_row(&[
            s.name.clone(),
            format!("{:.4}", bv.bias),
            format!("{:.4}", bv.variance),
            s.total_epochs.to_string(),
        ]);
    }
    println!("{}", table.render());
}
