//! Regenerates **Figure 8** — the pairwise similarity heatmaps between the
//! first 8 base models of Snapshot Ensemble, EDDE, and AdaBoost.NC on the
//! CIFAR-100 stand-in (similarity per Eq. 3, computed on the test set).
//!
//! `--checkpoint-dir DIR` makes the sequential methods resumable under
//! `DIR/<method>/`, so a killed run restores its completed members and
//! continues.

use edde_bench::harness::run_method;
use edde_bench::workloads::{cifar100_env, CvArch, Scale};
use edde_core::diversity::similarity_matrix;
use edde_core::methods::{AdaBoostNc, Edde, EnsembleMethod, Snapshot};
use edde_core::report::matrix_table;
use std::path::PathBuf;

#[allow(clippy::needless_range_loop)]
fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let checkpoint_dir: Option<PathBuf> =
        args.iter().position(|a| a == "--checkpoint-dir").map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .map(PathBuf::from)
                .expect("--checkpoint-dir requires a directory argument")
        });
    let members = scale.members(8);
    let cycle = scale.epochs(10);
    let env = cifar100_env(CvArch::ResNet, 42);
    println!("== Figure 8: pairwise similarity between the first {members} base models ==\n");
    let methods: Vec<Box<dyn EnsembleMethod>> = vec![
        Box::new(Snapshot::new(members, cycle)),
        Box::new(Edde::new(members, cycle, scale.epochs(8), 0.1, 0.7)),
        Box::new(AdaBoostNc::new(members, cycle)),
    ];
    for method in &methods {
        let (_, run) =
            run_method(method.as_ref(), &env, checkpoint_dir.as_deref()).expect("fig8 run");
        let probs = run
            .model
            .member_soft_targets(env.data.test.features())
            .expect("member soft targets");
        let matrix = similarity_matrix(&probs).expect("similarity matrix");
        println!("{}", matrix_table(&matrix, &method.name()));
        // off-diagonal mean, the single number the heatmap's hue encodes
        let t = matrix.len();
        let mut sum = 0.0f32;
        for i in 0..t {
            for j in 0..t {
                if i != j {
                    sum += matrix[i][j];
                }
            }
        }
        println!(
            "mean off-diagonal similarity: {:.4}\n",
            sum / (t * (t - 1)) as f32
        );
    }
}
