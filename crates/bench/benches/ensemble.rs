//! Criterion benchmarks for ensemble-level operations: soft-voting
//! prediction as the member count grows, the Eq. 2/7 diversity measure, and
//! β-knowledge transfer.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use edde_core::diversity::ensemble_diversity;
use edde_core::transfer::transfer_partial;
use edde_core::EnsembleModel;
use edde_nn::models::mlp;
use edde_tensor::ops::softmax_rows;
use edde_tensor::rng::rand_uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_soft_voting(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let features = rand_uniform(&[200, 16], -1.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("ensemble_predict");
    group.sample_size(20);
    for &members in &[2usize, 8] {
        let mut model = EnsembleModel::new();
        for m in 0..members {
            model.push(mlp(&[16, 32, 10], 0.0, &mut rng), 1.0, format!("m{m}"));
        }
        group.bench_function(format!("soft_vote_{members}_members"), |bench| {
            bench.iter_batched(
                || model.clone(),
                |m| m.soft_targets(black_box(&features)).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_diversity(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    // 8 members x [500, 20] soft targets, the Fig. 8 scale
    let probs: Vec<_> = (0..8)
        .map(|_| softmax_rows(&rand_uniform(&[500, 20], -2.0, 2.0, &mut rng)).unwrap())
        .collect();
    c.bench_function("ensemble_diversity_8x500x20", |bench| {
        bench.iter(|| ensemble_diversity(black_box(&probs)).unwrap())
    });
}

fn bench_transfer(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let teacher = mlp(&[64, 128, 64, 10], 0.0, &mut rng);
    let student = mlp(&[64, 128, 64, 10], 0.0, &mut rng);
    c.bench_function("beta_transfer_0.7", |bench| {
        bench.iter_batched(
            || (teacher.clone(), student.clone()),
            |(t, mut s)| transfer_partial(&t, &mut s, 0.7).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_soft_voting, bench_diversity, bench_transfer
}
criterion_main!(benches);
