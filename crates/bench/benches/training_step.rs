//! Criterion benchmarks for whole training steps (forward + loss + backward
//! plus SGD) on each of the paper's architectures, and the diversity-driven
//! loss against plain cross-entropy — quantifying the overhead of EDDE's
//! objective (it should be negligible, as the paper asserts).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use edde_nn::loss::{CrossEntropy, DiversityDriven};
use edde_nn::models::{densenet, resnet, textcnn, DenseNetConfig, ResNetConfig, TextCnnConfig};
use edde_nn::optim::Sgd;
use edde_nn::{Mode, Network};
use edde_tensor::rng::rand_uniform;
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn step(net: &mut Network, opt: &mut Sgd, x: &Tensor, labels: &[usize]) {
    let ce = CrossEntropy::new();
    net.zero_grad();
    let logits = net.train_forward(x, Mode::Train).unwrap();
    let out = ce.compute(&logits, labels, None).unwrap();
    net.backward(&out.grad_logits).unwrap();
    opt.step(net).unwrap();
}

fn bench_architectures(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);

    // ResNet-8 on a 16-sample image batch
    let net = resnet(
        &ResNetConfig {
            depth: 8,
            width: 12,
            in_channels: 3,
            num_classes: 10,
        },
        &mut rng,
    )
    .unwrap();
    let x = rand_uniform(&[16, 3, 12, 12], -1.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..16).map(|_| rng.random_range(0..10)).collect();
    group.bench_function("resnet8_b16", |bench| {
        bench.iter_batched(
            || (net.clone(), Sgd::new(0.1, 0.9, 1e-4)),
            |(mut n, mut o)| step(&mut n, &mut o, black_box(&x), &labels),
            BatchSize::SmallInput,
        )
    });

    // DenseNet on the same batch
    let dnet = densenet(
        &DenseNetConfig {
            layers_per_block: 3,
            blocks: 2,
            growth: 10,
            stem_channels: 10,
            in_channels: 3,
            num_classes: 10,
        },
        &mut rng,
    )
    .unwrap();
    group.bench_function("densenet_b16", |bench| {
        bench.iter_batched(
            || (dnet.clone(), Sgd::new(0.2, 0.9, 1e-4)),
            |(mut n, mut o)| step(&mut n, &mut o, black_box(&x), &labels),
            BatchSize::SmallInput,
        )
    });

    // Text-CNN on a 32-sequence batch
    let tnet = textcnn(&TextCnnConfig::small(300, 2), &mut rng).unwrap();
    let mut ids = Tensor::zeros(&[32, 20]);
    for v in ids.data_mut() {
        *v = rng.random_range(0..300) as f32;
    }
    let tlabels: Vec<usize> = (0..32).map(|i| i % 2).collect();
    group.bench_function("textcnn_b32", |bench| {
        bench.iter_batched(
            || (tnet.clone(), Sgd::new(0.1, 0.9, 1e-4)),
            |(mut n, mut o)| step(&mut n, &mut o, black_box(&ids), &tlabels),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_loss_overhead(c: &mut Criterion) {
    // The diversity-driven loss vs plain CE on identical logits: the paper
    // claims the extra cost of the ensemble machinery is trivial.
    let mut rng = StdRng::seed_from_u64(1);
    let logits = rand_uniform(&[64, 20], -2.0, 2.0, &mut rng);
    let labels: Vec<usize> = (0..64).map(|_| rng.random_range(0..20)).collect();
    let ensemble =
        edde_tensor::ops::softmax_rows(&rand_uniform(&[64, 20], -1.0, 1.0, &mut rng)).unwrap();
    let mut group = c.benchmark_group("loss");
    group.bench_function("cross_entropy_64x20", |bench| {
        bench.iter(|| {
            CrossEntropy::new()
                .compute(black_box(&logits), &labels, None)
                .unwrap()
        })
    });
    group.bench_function("diversity_driven_64x20", |bench| {
        bench.iter(|| {
            DiversityDriven::new(0.1)
                .compute(black_box(&logits), &labels, None, &ensemble)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_architectures, bench_loss_overhead
}
criterion_main!(benches);
