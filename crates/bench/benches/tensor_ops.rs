//! Criterion micro-benchmarks for the tensor substrate: matrix multiply,
//! convolution (forward and backward), softmax, and pooling — the kernels
//! every training epoch is built from.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use edde_tensor::ops::{
    conv2d, conv2d_backward, matmul, matmul_a_bt, matmul_at_b, max_pool2d, softmax_rows,
};
use edde_tensor::rng::rand_uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("matmul");
    // 256 matches BENCH_tensor.json's headline kernel measurement.
    for &n in &[32usize, 128, 256] {
        let a = rand_uniform(&[n, n], -1.0, 1.0, &mut rng);
        let b = rand_uniform(&[n, n], -1.0, 1.0, &mut rng);
        group.bench_function(format!("square_{n}"), |bench| {
            bench.iter(|| matmul(black_box(&a), black_box(&b)).unwrap())
        });
    }
    // the transposed variants used by backprop
    let a = rand_uniform(&[128, 64], -1.0, 1.0, &mut rng);
    let b = rand_uniform(&[128, 32], -1.0, 1.0, &mut rng);
    group.bench_function("at_b_128x64x32", |bench| {
        bench.iter(|| matmul_at_b(black_box(&a), black_box(&b)).unwrap())
    });
    let c2 = rand_uniform(&[64, 128], -1.0, 1.0, &mut rng);
    let d = rand_uniform(&[32, 128], -1.0, 1.0, &mut rng);
    group.bench_function("a_bt_64x128x32", |bench| {
        bench.iter(|| matmul_a_bt(black_box(&c2), black_box(&d)).unwrap())
    });
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("conv2d");
    // one training-batch-like workload: 32 samples, 12ch, 12x12, 3x3 kernel
    let input = rand_uniform(&[32, 12, 12, 12], -1.0, 1.0, &mut rng);
    let weight = rand_uniform(&[12, 12, 3, 3], -0.5, 0.5, &mut rng);
    group.bench_function("forward_b32_c12_12x12", |bench| {
        bench.iter(|| conv2d(black_box(&input), black_box(&weight), None, 1, 1).unwrap())
    });
    let out = conv2d(&input, &weight, None, 1, 1).unwrap();
    let grad = rand_uniform(out.dims(), -1.0, 1.0, &mut rng);
    group.bench_function("backward_b32_c12_12x12", |bench| {
        bench.iter(|| {
            conv2d_backward(
                black_box(&input),
                black_box(&weight),
                black_box(&grad),
                1,
                1,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_softmax_and_pool(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let logits = rand_uniform(&[256, 20], -3.0, 3.0, &mut rng);
    c.bench_function("softmax_rows_256x20", |bench| {
        bench.iter(|| softmax_rows(black_box(&logits)).unwrap())
    });
    let input = rand_uniform(&[32, 12, 12, 12], -1.0, 1.0, &mut rng);
    c.bench_function("max_pool2d_b32", |bench| {
        bench.iter_batched(
            || input.clone(),
            |t| max_pool2d(&t, 2, 2).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv, bench_softmax_and_pool
}
criterion_main!(benches);
