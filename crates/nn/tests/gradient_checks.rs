//! End-to-end finite-difference gradient checks for every model preset.
//!
//! For each architecture we perturb a sample of weights and compare
//! `dL/dθ` from backprop against `(L(θ+ε) − L(θ−ε)) / 2ε` with plain
//! cross-entropy on a fixed batch. Batch-norm models are checked in
//! training mode with the *same* batch statistics on every probe (the
//! perturbation changes the statistics too, which the analytic gradient
//! accounts for — so the check covers the full BN backward).

use edde_nn::loss::CrossEntropy;
use edde_nn::models::{
    densenet, mlp, resnet, textcnn, DenseNetConfig, ResNetConfig, TextCnnConfig,
};
use edde_nn::{Mode, Network};
use edde_tensor::rng::rand_uniform;
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Computes loss on a fixed batch for the network as-is.
fn loss_of(net: &mut Network, x: &Tensor, labels: &[usize]) -> f32 {
    let logits = net.train_forward(x, Mode::Train).unwrap();
    CrossEntropy::new()
        .compute(&logits, labels, None)
        .unwrap()
        .loss
}

/// Checks `count` randomly chosen parameters of `net` against finite
/// differences, with tolerance `tol` (ReLU kinks and f32 accumulation make
/// deep nets noisier than shallow ones).
fn check_network(mut net: Network, x: &Tensor, labels: &[usize], count: usize, tol: f32) {
    // analytic gradients
    net.zero_grad();
    let logits = net.train_forward(x, Mode::Train).unwrap();
    let out = CrossEntropy::new().compute(&logits, labels, None).unwrap();
    net.backward(&out.grad_logits).unwrap();

    // collect flat (path, index) addresses of all parameters
    let mut addresses = Vec::new();
    net.visit_params(&mut |name, p| {
        for i in 0..p.len() {
            addresses.push((name.to_string(), i));
        }
    });
    let mut rng = StdRng::seed_from_u64(99);
    let eps = 5e-3f32;
    let mut checked = 0;
    let mut attempts = 0;
    while checked < count && attempts < count * 10 {
        attempts += 1;
        let (ref name, idx) = addresses[rng.random_range(0..addresses.len())];
        // read analytic gradient
        let mut analytic = 0.0f32;
        net.visit_params(&mut |n, p| {
            if n == name {
                analytic = p.grad.data()[idx];
            }
        });
        // probe +/- eps
        let probe = |delta: f32| -> f32 {
            let mut clone = net.clone();
            clone.visit_params(&mut |n, p| {
                if n == name {
                    p.value.data_mut()[idx] += delta;
                }
            });
            loss_of(&mut clone, x, labels)
        };
        let numeric = (probe(eps) - probe(-eps)) / (2.0 * eps);
        // skip coordinates whose gradient is dominated by f32 noise
        if numeric.abs() < 1e-4 && analytic.abs() < 1e-4 {
            continue;
        }
        assert!(
            (numeric - analytic).abs() <= tol * (1.0 + numeric.abs()),
            "{name}[{idx}]: numeric {numeric} vs analytic {analytic}"
        );
        checked += 1;
    }
    assert!(checked > 0, "no checkable coordinates found");
}

#[test]
fn mlp_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(1);
    let net = mlp(&[6, 12, 4], 0.0, &mut rng);
    let x = rand_uniform(&[8, 6], -1.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
    check_network(net, &x, &labels, 12, 0.05);
}

#[test]
fn resnet_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(2);
    let net = resnet(
        &ResNetConfig {
            depth: 8,
            width: 4,
            in_channels: 3,
            num_classes: 3,
        },
        &mut rng,
    )
    .unwrap();
    let x = rand_uniform(&[4, 3, 8, 8], -1.0, 1.0, &mut rng);
    let labels = vec![0usize, 1, 2, 0];
    check_network(net, &x, &labels, 8, 0.12);
}

#[test]
fn densenet_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(3);
    let net = densenet(
        &DenseNetConfig {
            layers_per_block: 2,
            blocks: 2,
            growth: 4,
            stem_channels: 4,
            in_channels: 3,
            num_classes: 3,
        },
        &mut rng,
    )
    .unwrap();
    let x = rand_uniform(&[4, 3, 8, 8], -1.0, 1.0, &mut rng);
    let labels = vec![2usize, 1, 0, 1];
    check_network(net, &x, &labels, 8, 0.12);
}

#[test]
fn textcnn_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(4);
    let net = textcnn(
        &TextCnnConfig {
            vocab: 30,
            embed_dim: 8,
            kernel_sizes: vec![3, 4],
            filters: 6,
            dropout: 0.0, // dropout off: probes must be deterministic
            num_classes: 2,
        },
        &mut rng,
    )
    .unwrap();
    let mut ids = Tensor::zeros(&[6, 15]);
    for v in ids.data_mut() {
        *v = rng.random_range(0..30) as f32;
    }
    let labels: Vec<usize> = (0..6).map(|i| i % 2).collect();
    check_network(net, &ids, &labels, 10, 0.08);
}
