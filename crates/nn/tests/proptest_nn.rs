//! Property-based tests for the neural-network framework: loss invariants,
//! schedule bounds, and gradient-flow sanity under random configurations.

use edde_nn::loss::{CrossEntropy, Distillation, DiversityDriven};
use edde_nn::models::mlp;
use edde_nn::optim::LrSchedule;
use edde_nn::{Mode, Param};
use edde_tensor::ops::softmax_rows;
use edde_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: (logits, labels) with consistent shapes.
fn batch() -> impl Strategy<Value = (Tensor, Vec<usize>)> {
    (1usize..8, 2usize..6).prop_flat_map(|(n, k)| {
        (
            prop::collection::vec(-5.0f32..5.0, n * k),
            prop::collection::vec(0usize..k, n),
            Just((n, k)),
        )
            .prop_map(|(data, labels, (n, k))| (Tensor::from_vec(data, &[n, k]).unwrap(), labels))
    })
}

/// Strategy: (logits, labels, teacher/ensemble probs).
fn batch_with_targets() -> impl Strategy<Value = (Tensor, Vec<usize>, Tensor)> {
    batch().prop_flat_map(|(logits, labels)| {
        let dims = logits.dims().to_vec();
        let n: usize = dims.iter().product();
        (
            Just(logits),
            Just(labels),
            prop::collection::vec(-3.0f32..3.0, n)
                .prop_map(move |raw| softmax_rows(&Tensor::from_vec(raw, &dims).unwrap()).unwrap()),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cross_entropy_is_non_negative_and_finite((logits, labels) in batch()) {
        let out = CrossEntropy::new().compute(&logits, &labels, None).unwrap();
        prop_assert!(out.loss >= 0.0);
        prop_assert!(out.loss.is_finite());
        prop_assert!(out.grad_logits.all_finite());
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero((logits, labels) in batch()) {
        // softmax gradient rows (p - y) scaled by w/N always sum to zero
        let out = CrossEntropy::new().compute(&logits, &labels, None).unwrap();
        let k = logits.dims()[1];
        for i in 0..logits.dims()[0] {
            let row_sum: f32 = out.grad_logits.data()[i * k..(i + 1) * k].iter().sum();
            prop_assert!(row_sum.abs() < 1e-5);
        }
    }

    #[test]
    fn diversity_loss_never_exceeds_ce((logits, labels, q) in batch_with_targets(), gamma in 0.0f32..2.0) {
        // Eq. 10 subtracts a non-negative term, so L_div <= L_ce always
        let ce = CrossEntropy::new().compute(&logits, &labels, None).unwrap();
        let dd = DiversityDriven::new(gamma).compute(&logits, &labels, None, &q).unwrap();
        prop_assert!(dd.loss <= ce.loss + 1e-5);
        prop_assert!(dd.grad_logits.all_finite());
    }

    #[test]
    fn diversity_gradient_rows_sum_to_zero((logits, labels, q) in batch_with_targets(), gamma in 0.0f32..1.5) {
        // both the CE and diversity components pass through the softmax
        // Jacobian, whose rows are orthogonal to the all-ones vector
        let out = DiversityDriven::new(gamma).compute(&logits, &labels, None, &q).unwrap();
        let k = logits.dims()[1];
        for i in 0..logits.dims()[0] {
            let row_sum: f32 = out.grad_logits.data()[i * k..(i + 1) * k].iter().sum();
            prop_assert!(row_sum.abs() < 1e-4, "row {i} sums to {row_sum}");
        }
    }

    #[test]
    fn distillation_is_finite_for_valid_configs(
        (logits, labels, q) in batch_with_targets(),
        lambda in 0.0f32..=1.0,
        tau in 0.5f32..4.0,
    ) {
        let out = Distillation::new(lambda, tau).compute(&logits, &labels, &q).unwrap();
        prop_assert!(out.loss.is_finite());
        prop_assert!(out.grad_logits.all_finite());
    }

    #[test]
    fn step_schedule_is_monotone_nonincreasing(base in 0.01f32..1.0, total in 4usize..200) {
        let s = LrSchedule::paper_step(base, total);
        let mut prev = f32::INFINITY;
        for e in 0..total {
            let lr = s.lr_at(e);
            prop_assert!(lr <= prev);
            prop_assert!(lr > 0.0);
            prev = lr;
        }
        // exactly two decades of decay by the end
        prop_assert!((s.lr_at(total - 1) - base / 100.0).abs() < 1e-7);
    }

    #[test]
    fn cosine_schedule_is_periodic(base in 0.01f32..1.0, cycle in 2usize..40, e in 0usize..200) {
        let s = LrSchedule::CosineRestarts { base, cycle_epochs: cycle };
        prop_assert!((s.lr_at(e) - s.lr_at(e + cycle)).abs() < 1e-6);
        prop_assert!(s.lr_at(e) <= base + 1e-6);
        prop_assert!(s.lr_at(e) >= 0.0);
    }

    #[test]
    fn mlp_forward_is_shape_stable(widths in prop::collection::vec(1usize..10, 2..5), n in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = mlp(&widths, 0.0, &mut rng);
        let x = Tensor::zeros(&[n, widths[0]]);
        let y = net.train_forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(y.dims(), &[n, *widths.last().unwrap()]);
    }

    #[test]
    fn param_grad_accumulation_is_additive(v in prop::collection::vec(-3.0f32..3.0, 1..16)) {
        let dims = vec![v.len()];
        let mut p = Param::new(Tensor::zeros(&dims));
        let g = Tensor::from_vec(v, &dims).unwrap();
        p.accumulate_grad(&g);
        p.accumulate_grad(&g);
        for (a, b) in p.grad.data().iter().zip(g.data().iter()) {
            prop_assert!((a - 2.0 * b).abs() < 1e-5);
        }
        p.zero_grad();
        prop_assert!(p.grad.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn state_export_import_is_identity_on_networks(seed in 0u64..32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = mlp(&[3, 5, 2], 0.0, &mut rng);
        let mut b = mlp(&[3, 5, 2], 0.0, &mut rng);
        let state = a.export_state();
        b.import_state(&state).unwrap();
        let x = Tensor::ones(&[2, 3]);
        let ya = a.train_forward(&x, Mode::Eval).unwrap();
        let yb = b.train_forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(ya.data(), yb.data());
    }
}
