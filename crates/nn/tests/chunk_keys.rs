//! Property tests for the chunk-store key encoding: round-trip fidelity,
//! collision-freedom across distinct addresses, and lexicographic order
//! matching numeric `(part, chunk)` order — the invariant that lets a
//! sorted directory listing read a member back in write order.
//!
//! Each property also has a plain unit-test twin below, because the
//! offline verification harness stubs the proptest macros to no-ops.

use edde_nn::chunkstore::{chunk_key, index_key, parse_chunk_key, parse_index_key};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn chunk_key_round_trips(m in 0usize..10_000, p in 0usize..99_999, c in 0usize..99_999_999) {
        prop_assert_eq!(parse_chunk_key(&chunk_key(m, p, c)), Some((m, p, c)));
    }

    #[test]
    fn distinct_addresses_never_collide(
        a in (0usize..50, 0usize..50, 0usize..50),
        b in (0usize..50, 0usize..50, 0usize..50),
    ) {
        if a != b {
            prop_assert_ne!(chunk_key(a.0, a.1, a.2), chunk_key(b.0, b.1, b.2));
        }
    }

    #[test]
    fn chunk_and_index_namespaces_are_disjoint(m in 0usize..10_000, p in 0usize..99_999, c in 0usize..99_999_999) {
        let ck = chunk_key(m, p, c);
        prop_assert_eq!(parse_index_key(&ck), None);
        prop_assert_eq!(parse_chunk_key(&index_key(m)), None);
    }

    #[test]
    fn lexicographic_order_is_numeric_order_within_a_member(
        m in 0usize..100,
        a in (0usize..99_999, 0usize..99_999_999),
        b in (0usize..99_999, 0usize..99_999_999),
    ) {
        let (ka, kb) = (chunk_key(m, a.0, a.1), chunk_key(m, b.0, b.1));
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
    }
}

#[test]
fn round_trip_and_parse_rejections() {
    for &(m, p, c) in &[
        (0usize, 0usize, 0usize),
        (7, 3, 12),
        (9_999, 99_999, 99_999_999),
    ] {
        assert_eq!(parse_chunk_key(&chunk_key(m, p, c)), Some((m, p, c)));
    }
    assert_eq!(parse_index_key(&index_key(7)), Some(7));
    for bad in [
        "member-3-progress",
        "member-3-index",
        "member-3-chunk-1-2",   // unpadded fields
        "member-3-chunk-00001", // missing chunk field
        "member-x-chunk-00000-00000000",
        "manifest",
        "",
    ] {
        assert_eq!(parse_chunk_key(bad), None, "{bad:?}");
    }
    assert_eq!(parse_index_key("member-3-progress"), None);
    assert_eq!(parse_index_key("member--index"), None);
}

#[test]
fn sorted_keys_enumerate_in_write_order() {
    let mut written = Vec::new();
    for p in [0usize, 1, 2, 9, 10, 11, 99, 100] {
        for c in [0usize, 1, 9, 10, 99, 100, 999, 1000] {
            written.push(chunk_key(5, p, c));
        }
    }
    let mut sorted = written.clone();
    sorted.sort();
    assert_eq!(written, sorted);
}

#[test]
fn distinct_addresses_differ_unit() {
    let mut seen = std::collections::HashSet::new();
    for m in 0..4 {
        for p in 0..6 {
            for c in 0..6 {
                assert!(seen.insert(chunk_key(m, p, c)), "collision at {m}/{p}/{c}");
            }
        }
    }
}
