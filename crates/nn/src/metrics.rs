//! Classification metrics.

use crate::error::{NnError, Result};
use edde_tensor::ops::argmax_rows;
use edde_tensor::Tensor;

/// Fraction of rows of `scores` (logits or probabilities, `[N, k]`) whose
/// argmax equals the label.
pub fn accuracy(scores: &Tensor, labels: &[usize]) -> Result<f32> {
    let preds = argmax_rows(scores)?;
    if preds.len() != labels.len() {
        return Err(NnError::BadLossInput(format!(
            "{} predictions vs {} labels",
            preds.len(),
            labels.len()
        )));
    }
    if labels.is_empty() {
        return Err(NnError::BadLossInput("empty evaluation set".into()));
    }
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, y)| p == y)
        .count();
    Ok(correct as f32 / labels.len() as f32)
}

/// A `k × k` confusion matrix; rows are true labels, columns predictions.
pub fn confusion_matrix(scores: &Tensor, labels: &[usize], k: usize) -> Result<Vec<Vec<usize>>> {
    let preds = argmax_rows(scores)?;
    if preds.len() != labels.len() {
        return Err(NnError::BadLossInput(format!(
            "{} predictions vs {} labels",
            preds.len(),
            labels.len()
        )));
    }
    let mut m = vec![vec![0usize; k]; k];
    for (&p, &y) in preds.iter().zip(labels.iter()) {
        if y >= k || p >= k {
            return Err(NnError::BadLossInput(format!(
                "label/prediction out of range for k={k}"
            )));
        }
        m[y][p] += 1;
    }
    Ok(m)
}

/// Per-sample 0/1 correctness vector — the building block of the boosting
/// weight updates in Algorithm 1.
pub fn correctness(scores: &Tensor, labels: &[usize]) -> Result<Vec<bool>> {
    let preds = argmax_rows(scores)?;
    if preds.len() != labels.len() {
        return Err(NnError::BadLossInput(format!(
            "{} predictions vs {} labels",
            preds.len(),
            labels.len()
        )));
    }
    Ok(preds
        .iter()
        .zip(labels.iter())
        .map(|(p, y)| p == y)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores() -> Tensor {
        Tensor::from_vec(
            vec![
                0.9, 0.1, 0.0, // -> 0
                0.1, 0.8, 0.1, // -> 1
                0.2, 0.3, 0.5, // -> 2
                0.6, 0.3, 0.1, // -> 0
            ],
            &[4, 3],
        )
        .unwrap()
    }

    #[test]
    fn accuracy_counts_matches() {
        let acc = accuracy(&scores(), &[0, 1, 2, 1]).unwrap();
        assert!((acc - 0.75).abs() < 1e-6);
        assert_eq!(accuracy(&scores(), &[0, 1, 2, 0]).unwrap(), 1.0);
    }

    #[test]
    fn accuracy_validates_sizes() {
        assert!(accuracy(&scores(), &[0, 1]).is_err());
        assert!(accuracy(&Tensor::zeros(&[0, 3]), &[]).is_err());
    }

    #[test]
    fn confusion_matrix_rows_are_truth() {
        let m = confusion_matrix(&scores(), &[0, 1, 2, 1], 3).unwrap();
        assert_eq!(m[0], vec![1, 0, 0]);
        assert_eq!(m[1], vec![1, 1, 0]); // one true-1 predicted 0
        assert_eq!(m[2], vec![0, 0, 1]);
    }

    #[test]
    fn correctness_flags() {
        let c = correctness(&scores(), &[0, 1, 0, 0]).unwrap();
        assert_eq!(c, vec![true, true, false, true]);
    }
}
