//! Optimization: SGD with momentum/weight-decay and the paper's
//! learning-rate schedules.

pub mod schedule;
pub mod sgd;

pub use schedule::LrSchedule;
pub use sgd::Sgd;
