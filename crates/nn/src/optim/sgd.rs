//! Stochastic gradient descent with momentum and decoupled-style weight
//! decay, matching the paper's protocol ("stochastic gradient descent" with
//! a step-decay or cosine-annealed learning rate).

use crate::error::{NnError, Result};
use crate::network::Network;
use bytes::Bytes;
use edde_tensor::Tensor;
use std::collections::HashMap;

/// SGD with classical momentum:
///
/// ```text
/// v ← μ·v + (g + wd·θ)
/// θ ← θ − lr·v
/// ```
///
/// Velocity buffers are keyed by parameter path, so an optimizer survives a
/// model being re-initialized as long as the architecture (and therefore the
/// paths) stays the same — which is exactly what happens across EDDE
/// boosting rounds.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<String, Tensor>,
}

impl Sgd {
    /// A new optimizer. `momentum` of 0.9 and small `weight_decay`
    /// (e.g. 1e-4) mirror the standard CIFAR recipes.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: HashMap::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (called by schedules between epochs).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Drops all velocity state (used when a fresh base model starts
    /// training in a new ensemble round).
    pub fn reset_state(&mut self) {
        self.velocity.clear();
    }

    /// Serializes the velocity buffers (the optimizer's only training
    /// state — `lr`/`momentum`/`weight_decay` are configuration the caller
    /// reconstructs). Entries are sorted by parameter path so the encoding
    /// is deterministic regardless of `HashMap` iteration order; values
    /// round-trip as exact little-endian `f32` bit patterns.
    pub fn export_state(&self) -> Bytes {
        let mut entries: Vec<(String, Tensor)> = self
            .velocity
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        edde_tensor::serialize::encode_params(&entries)
    }

    /// Restores velocity buffers written by [`Sgd::export_state`],
    /// replacing any current state. Buffers are keyed by parameter path,
    /// so the optimizer must step the same architecture that exported
    /// them.
    pub fn import_state(&mut self, bytes: Bytes) -> Result<()> {
        let entries = edde_tensor::serialize::decode_params(bytes).map_err(NnError::Tensor)?;
        self.velocity = entries.into_iter().collect();
        Ok(())
    }

    /// Applies one update step to every parameter of `net` from its
    /// currently accumulated gradients, then leaves gradients untouched
    /// (call [`Network::zero_grad`] before the next backward pass).
    ///
    /// Returns an error if any gradient is non-finite — the training loops
    /// treat that as divergence rather than silently corrupting weights.
    pub fn step(&mut self, net: &mut Network) -> Result<()> {
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        let mut bad: Option<String> = None;
        net.visit_params(&mut |name, p| {
            if bad.is_some() {
                return;
            }
            if !p.grad.all_finite() {
                bad = Some(name.to_string());
                return;
            }
            let v = velocity
                .entry(name.to_string())
                .or_insert_with(|| Tensor::zeros(p.value.dims()));
            debug_assert_eq!(v.dims(), p.value.dims());
            for ((vi, &gi), ti) in v
                .data_mut()
                .iter_mut()
                .zip(p.grad.data().iter())
                .zip(p.value.data_mut().iter_mut())
            {
                *vi = momentum * *vi + gi + wd * *ti;
                *ti -= lr * *vi;
            }
        });
        if bad.is_some() {
            return Err(NnError::NonFinite("gradient"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::CrossEntropy;
    use crate::models::mlp;
    use crate::param::Mode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sgd_descends_a_simple_objective() {
        let mut r = StdRng::seed_from_u64(0);
        let mut net = mlp(&[2, 16, 2], 0.0, &mut r);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let ce = CrossEntropy::new();
        // learn XOR-ish separable data
        let x = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 0.0], &[4, 2]).unwrap();
        let labels = [0usize, 0, 1, 1];
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            net.zero_grad();
            let logits = net.train_forward(&x, Mode::Train).unwrap();
            let out = ce.compute(&logits, &labels, None).unwrap();
            net.backward(&out.grad_logits).unwrap();
            opt.step(&mut net).unwrap();
            if first.is_none() {
                first = Some(out.loss);
            }
            last = out.loss;
        }
        assert!(last < 0.1, "final loss {last}");
        assert!(last < first.unwrap());
    }

    #[test]
    fn non_finite_gradient_is_an_error() {
        let mut r = StdRng::seed_from_u64(0);
        let mut net = mlp(&[2, 2], 0.0, &mut r);
        net.visit_params(&mut |_, p| p.grad.data_mut().fill(f32::NAN));
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        assert!(opt.step(&mut net).is_err());
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut r = StdRng::seed_from_u64(0);
        let mut net = mlp(&[2, 2], 0.0, &mut r);
        let before: f32 = {
            let mut n = 0.0;
            net.visit_params(&mut |_, p| n += p.value.l2_norm());
            n
        };
        // zero gradients, pure decay
        net.zero_grad();
        let mut opt = Sgd::new(0.5, 0.0, 0.1);
        for _ in 0..10 {
            opt.step(&mut net).unwrap();
        }
        let after: f32 = {
            let mut n = 0.0;
            net.visit_params(&mut |_, p| n += p.value.l2_norm());
            n
        };
        assert!(after < before);
    }

    #[test]
    fn set_lr_and_reset_state() {
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
        opt.reset_state();
        assert!(opt.velocity.is_empty());
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        Sgd::new(0.0, 0.9, 0.0);
    }
}
