//! Learning-rate schedules.
//!
//! The paper uses two schedules:
//!
//! * **step decay** — divide the learning rate by 10 at 50% and 75% of the
//!   epoch budget ("All methods except Snapshot Ensemble use a standard
//!   learning rate schedule", §V-A(d));
//! * **cosine annealing with warm restarts** — Snapshot Ensemble's schedule
//!   (Loshchilov & Hutter, SGDR), restarting every cycle so the model can
//!   escape to a new local minimum before the next snapshot.

/// A learning-rate schedule mapping an epoch index to a rate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LrSchedule {
    /// A constant rate.
    Constant {
        /// The rate used for every epoch.
        base: f32,
    },
    /// The paper's standard schedule: `base`, divided by `factor` when
    /// training passes each fraction in `milestones` of `total_epochs`.
    StepDecay {
        /// Initial learning rate.
        base: f32,
        /// Total epoch budget the milestones are relative to.
        total_epochs: usize,
        /// Fractions of the budget at which decay happens (e.g. `[0.5, 0.75]`).
        milestones: Vec<f32>,
        /// Division factor at each milestone (paper: 10).
        factor: f32,
    },
    /// Cosine annealing with warm restarts:
    /// `lr(t) = base/2 · (cos(π·(t mod C)/C) + 1)` for cycle length `C`.
    CosineRestarts {
        /// Initial (maximum) learning rate of each cycle.
        base: f32,
        /// Cycle length in epochs; the rate is restarted to `base` at each
        /// multiple of this.
        cycle_epochs: usize,
    },
}

impl LrSchedule {
    /// The paper's default step schedule (decay ×10 at 50% and 75%).
    pub fn paper_step(base: f32, total_epochs: usize) -> Self {
        LrSchedule::StepDecay {
            base,
            total_epochs,
            milestones: vec![0.5, 0.75],
            factor: 10.0,
        }
    }

    /// The learning rate for (0-based) `epoch`.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        match self {
            LrSchedule::Constant { base } => *base,
            LrSchedule::StepDecay {
                base,
                total_epochs,
                milestones,
                factor,
            } => {
                let mut lr = *base;
                let frac = if *total_epochs == 0 {
                    0.0
                } else {
                    epoch as f32 / *total_epochs as f32
                };
                for &m in milestones {
                    if frac >= m {
                        lr /= factor;
                    }
                }
                lr
            }
            LrSchedule::CosineRestarts { base, cycle_epochs } => {
                let c = (*cycle_epochs).max(1);
                let t = (epoch % c) as f32 / c as f32;
                base / 2.0 * ((std::f32::consts::PI * t).cos() + 1.0)
            }
        }
    }

    /// True at the first epoch of a new cosine cycle (epoch > 0), i.e. the
    /// point where Snapshot Ensemble has just saved a snapshot and restarted.
    pub fn is_restart(&self, epoch: usize) -> bool {
        match self {
            LrSchedule::CosineRestarts { cycle_epochs, .. } => {
                epoch > 0 && epoch.is_multiple_of((*cycle_epochs).max(1))
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { base: 0.1 };
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(1000), 0.1);
    }

    #[test]
    fn step_decay_halves_at_milestones() {
        let s = LrSchedule::paper_step(0.1, 100);
        assert!((s.lr_at(0) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(49) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(50) - 0.01).abs() < 1e-7);
        assert!((s.lr_at(74) - 0.01).abs() < 1e-7);
        assert!((s.lr_at(75) - 0.001).abs() < 1e-7);
        assert!((s.lr_at(99) - 0.001).abs() < 1e-7);
    }

    #[test]
    fn cosine_restarts_peak_and_trough() {
        let s = LrSchedule::CosineRestarts {
            base: 0.2,
            cycle_epochs: 10,
        };
        assert!((s.lr_at(0) - 0.2).abs() < 1e-6); // cycle start: max
        assert!(s.lr_at(9) < 0.01); // cycle end: near zero
        assert!((s.lr_at(10) - 0.2).abs() < 1e-6); // restart
        assert!((s.lr_at(5) - 0.1).abs() < 1e-6); // midpoint: half
    }

    #[test]
    fn restart_detection() {
        let s = LrSchedule::CosineRestarts {
            base: 0.1,
            cycle_epochs: 5,
        };
        assert!(!s.is_restart(0));
        assert!(!s.is_restart(4));
        assert!(s.is_restart(5));
        assert!(s.is_restart(10));
        let step = LrSchedule::paper_step(0.1, 10);
        assert!(!step.is_restart(5));
    }

    #[test]
    fn monotone_decay_within_cycle() {
        let s = LrSchedule::CosineRestarts {
            base: 0.1,
            cycle_epochs: 8,
        };
        for e in 0..7 {
            assert!(s.lr_at(e) > s.lr_at(e + 1));
        }
    }
}
