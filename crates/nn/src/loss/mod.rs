//! Loss functions.
//!
//! Every loss computes straight from **logits** (pre-softmax scores) so that
//! gradients can be formed analytically and stably:
//!
//! * [`CrossEntropy`] — weighted categorical cross-entropy;
//! * [`DiversityDriven`] — the paper's Eq. 10 loss
//!   `L = W(x)·{CE(y, h(x)) − γ‖h(x) − H(x)‖₂}` that *negatively correlates*
//!   a base model with the running ensemble's soft target;
//! * [`Distillation`] — the knowledge-distillation loss BANs trains with.

mod cross_entropy;
mod distill;
mod diversity;

pub use cross_entropy::CrossEntropy;
pub use distill::Distillation;
pub use diversity::DiversityDriven;

use edde_tensor::Tensor;

/// Result of a loss evaluation over a batch.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean (weighted) loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the logits, `[N, k]`.
    pub grad_logits: Tensor,
}

/// Floor applied inside `ln` to keep cross-entropy finite when a class
/// probability underflows.
pub(crate) const PROB_EPS: f32 = 1e-9;

pub(crate) fn validate_batch(
    logits: &Tensor,
    labels: &[usize],
) -> crate::error::Result<(usize, usize)> {
    use crate::error::NnError;
    if logits.rank() != 2 {
        return Err(NnError::BadLossInput(format!(
            "logits must be [N, k], got {:?}",
            logits.dims()
        )));
    }
    let (n, k) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != n {
        return Err(NnError::BadLossInput(format!(
            "batch size {n} but {} labels",
            labels.len()
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&y| y >= k) {
        return Err(NnError::BadLossInput(format!(
            "label {bad} out of range for {k} classes"
        )));
    }
    Ok((n, k))
}

pub(crate) fn validate_weights(weights: Option<&[f32]>, n: usize) -> crate::error::Result<()> {
    use crate::error::NnError;
    if let Some(w) = weights {
        if w.len() != n {
            return Err(NnError::BadLossInput(format!(
                "batch size {n} but {} sample weights",
                w.len()
            )));
        }
        if w.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(NnError::BadLossInput(
                "sample weights must be finite and non-negative".into(),
            ));
        }
    }
    Ok(())
}
