//! The diversity-driven loss of EDDE (paper Eq. 10 / 11).

use super::{validate_batch, validate_weights, LossOutput, PROB_EPS};
use crate::error::{NnError, Result};
use edde_tensor::ops::softmax_rows;
use edde_tensor::Tensor;

/// EDDE's diversity-driven loss:
///
/// ```text
/// L(x) = W(x) · { −Σ_c y_c ln h_c(x)  −  γ ‖h(x) − H(x)‖₂ }        (Eq. 10)
/// ```
///
/// where `h(x)` is the current base model's softmax output and `H(x)` the
/// previous ensemble's soft target. The second term is *subtracted*: the new
/// model is rewarded for moving its prediction away from the ensemble, which
/// is exactly the negative-correlation objective of Eq. 8.
///
/// The gradient is taken with respect to logits by pushing Eq. 11 through
/// the softmax Jacobian `J = diag(p) − p pᵀ`:
///
/// ```text
/// ∂L/∂z = W(x)/N · [ (p − y) − γ (p ⊙ u − (p·u) p) ],   u = (p − q)/‖p − q‖₂
/// ```
///
/// When `‖p − q‖₂` is numerically zero the diversity direction is undefined
/// and the term is skipped for that sample (its subgradient set contains 0).
#[derive(Debug, Clone, Copy)]
pub struct DiversityDriven {
    /// Strength γ of the diversity term. The paper tunes this in
    /// {0, 0.1, 0.3, 0.5, 1.0} (Table V) and uses 0.1 for ResNet / 0.2 for
    /// DenseNet.
    pub gamma: f32,
}

impl DiversityDriven {
    /// A diversity-driven loss with strength `gamma` (γ ≥ 0).
    pub fn new(gamma: f32) -> Self {
        DiversityDriven { gamma }
    }

    /// Computes loss and logits gradient for one batch.
    ///
    /// `ensemble_probs` is `H_{t−1}(x)` for each sample: an `[N, k]` matrix
    /// of soft targets from the current ensemble.
    pub fn compute(
        &self,
        logits: &Tensor,
        labels: &[usize],
        sample_weights: Option<&[f32]>,
        ensemble_probs: &Tensor,
    ) -> Result<LossOutput> {
        let (n, k) = validate_batch(logits, labels)?;
        validate_weights(sample_weights, n)?;
        if ensemble_probs.dims() != [n, k] {
            return Err(NnError::BadLossInput(format!(
                "ensemble soft targets must be [{n}, {k}], got {:?}",
                ensemble_probs.dims()
            )));
        }
        let probs = softmax_rows(logits)?;
        let inv_n = 1.0 / n as f32;
        let mut grad = Tensor::zeros(&[n, k]);
        let mut loss = 0.0f64;
        for i in 0..n {
            let w = sample_weights.map_or(1.0, |ws| ws[i]);
            let p = &probs.data()[i * k..(i + 1) * k];
            let q = &ensemble_probs.data()[i * k..(i + 1) * k];
            let g = &mut grad.data_mut()[i * k..(i + 1) * k];

            // cross-entropy part
            let p_y = p[labels[i]].max(PROB_EPS);
            let mut sample_loss = -p_y.ln();
            for (c, gv) in g.iter_mut().enumerate() {
                *gv = p[c] - if c == labels[i] { 1.0 } else { 0.0 };
            }

            // diversity part: −γ‖p − q‖₂
            let mut dist_sq = 0.0f32;
            for c in 0..k {
                let d = p[c] - q[c];
                dist_sq += d * d;
            }
            let dist = dist_sq.sqrt();
            if dist > 1e-8 && self.gamma > 0.0 {
                sample_loss -= self.gamma * dist;
                // u = (p − q)/dist; dL_div/dp = −γ u; through softmax:
                // dL_div/dz = −γ (p⊙u − (p·u) p)
                let mut p_dot_u = 0.0f32;
                for c in 0..k {
                    p_dot_u += p[c] * (p[c] - q[c]) / dist;
                }
                for c in 0..k {
                    let u_c = (p[c] - q[c]) / dist;
                    g[c] -= self.gamma * (p[c] * u_c - p_dot_u * p[c]);
                }
            }

            loss += f64::from(w) * f64::from(sample_loss);
            for gv in g.iter_mut() {
                *gv *= w * inv_n;
            }
        }
        Ok(LossOutput {
            loss: (loss * f64::from(inv_n)) as f32,
            grad_logits: grad,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::CrossEntropy;

    #[test]
    fn gamma_zero_reduces_to_cross_entropy() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.0, 0.3, -0.7], &[2, 3]).unwrap();
        let labels = [2usize, 1];
        let q = Tensor::full(&[2, 3], 1.0 / 3.0);
        let div = DiversityDriven::new(0.0)
            .compute(&logits, &labels, None, &q)
            .unwrap();
        let ce = CrossEntropy::new().compute(&logits, &labels, None).unwrap();
        assert!((div.loss - ce.loss).abs() < 1e-6);
        for (a, b) in div
            .grad_logits
            .data()
            .iter()
            .zip(ce.grad_logits.data().iter())
        {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn diversity_term_lowers_loss_when_far_from_ensemble() {
        let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0], &[1, 3]).unwrap();
        let labels = [0usize];
        // ensemble agrees with the model exactly -> zero diversity reward
        let p = edde_tensor::ops::softmax_rows(&logits).unwrap();
        let same = DiversityDriven::new(0.5)
            .compute(&logits, &labels, None, &p)
            .unwrap();
        // ensemble disagrees -> diversity reward kicks in, loss is lower
        let q = Tensor::from_vec(vec![0.0, 0.0, 1.0], &[1, 3]).unwrap();
        let far = DiversityDriven::new(0.5)
            .compute(&logits, &labels, None, &q)
            .unwrap();
        assert!(far.loss < same.loss);
    }

    #[test]
    fn gradient_matches_numerical() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 0.9, -1.0, 0.1, 0.4], &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let weights = [1.25f32, 0.75];
        let q = Tensor::from_vec(vec![0.7, 0.2, 0.1, 0.1, 0.6, 0.3], &[2, 3]).unwrap();
        let loss_fn = DiversityDriven::new(0.4);
        let out = loss_fn
            .compute(&logits, &labels, Some(&weights), &q)
            .unwrap();
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut p = logits.clone();
            p.data_mut()[i] += eps;
            let mut m = logits.clone();
            m.data_mut()[i] -= eps;
            let lp = loss_fn
                .compute(&p, &labels, Some(&weights), &q)
                .unwrap()
                .loss;
            let lm = loss_fn
                .compute(&m, &labels, Some(&weights), &q)
                .unwrap()
                .loss;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - out.grad_logits.data()[i]).abs() < 2e-3,
                "logit {i}: num {num} vs ana {}",
                out.grad_logits.data()[i]
            );
        }
    }

    #[test]
    fn degenerate_zero_distance_is_skipped() {
        // logits chosen so softmax(p) == q exactly (uniform)
        let logits = Tensor::zeros(&[1, 4]);
        let q = Tensor::full(&[1, 4], 0.25);
        let out = DiversityDriven::new(1.0)
            .compute(&logits, &[0], None, &q)
            .unwrap();
        assert!(out.loss.is_finite());
        assert!(out.grad_logits.all_finite());
    }

    #[test]
    fn rejects_mismatched_ensemble_targets() {
        let logits = Tensor::zeros(&[2, 3]);
        let q = Tensor::zeros(&[2, 4]);
        assert!(DiversityDriven::new(0.1)
            .compute(&logits, &[0, 1], None, &q)
            .is_err());
    }

    #[test]
    fn larger_gamma_pushes_harder_away_from_ensemble() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[1, 3]).unwrap();
        let q = Tensor::from_vec(vec![0.8, 0.1, 0.1], &[1, 3]).unwrap();
        let g_small = DiversityDriven::new(0.1)
            .compute(&logits, &[0], None, &q)
            .unwrap();
        let g_large = DiversityDriven::new(1.0)
            .compute(&logits, &[0], None, &q)
            .unwrap();
        // the diversity component grows with gamma, so the gradients differ
        let diff: f32 = g_small
            .grad_logits
            .data()
            .iter()
            .zip(g_large.grad_logits.data().iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4);
        assert!(g_large.loss < g_small.loss);
    }
}
