//! Weighted categorical cross-entropy.

use super::{validate_batch, validate_weights, LossOutput, PROB_EPS};
use crate::error::Result;
use edde_tensor::ops::softmax_rows;
use edde_tensor::Tensor;

/// Categorical cross-entropy over logits with optional per-sample weights.
///
/// Loss per sample: `L_i = w_i · (−ln p_{i, y_i})`; the reported value and
/// the logits gradient are both divided by the batch size, so sample weights
/// with mean 1 leave the effective learning rate unchanged (the convention
/// the EDDE boosting loop relies on).
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropy;

impl CrossEntropy {
    /// A fresh loss.
    pub fn new() -> Self {
        CrossEntropy
    }

    /// Computes loss and logits gradient for one batch.
    pub fn compute(
        &self,
        logits: &Tensor,
        labels: &[usize],
        sample_weights: Option<&[f32]>,
    ) -> Result<LossOutput> {
        let (n, k) = validate_batch(logits, labels)?;
        validate_weights(sample_weights, n)?;
        let probs = softmax_rows(logits)?;
        let inv_n = 1.0 / n as f32;
        let mut grad = probs.clone();
        let mut loss = 0.0f64;
        for i in 0..n {
            let w = sample_weights.map_or(1.0, |ws| ws[i]);
            let row = &mut grad.data_mut()[i * k..(i + 1) * k];
            let p_y = row[labels[i]].max(PROB_EPS);
            loss += f64::from(w) * f64::from(-p_y.ln());
            row[labels[i]] -= 1.0;
            for v in row.iter_mut() {
                *v *= w * inv_n;
            }
        }
        Ok(LossOutput {
            loss: (loss * f64::from(inv_n)) as f32,
            grad_logits: grad,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0, 0.0, 20.0, 0.0], &[2, 3]).unwrap();
        let out = CrossEntropy::new().compute(&logits, &[0, 1], None).unwrap();
        assert!(out.loss < 1e-3, "loss {}", out.loss);
        assert!(out.grad_logits.max_abs() < 1e-3);
    }

    #[test]
    fn uniform_logits_give_ln_k() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = CrossEntropy::new()
            .compute(&logits, &[0, 3, 5, 9], None)
            .unwrap();
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn gradient_is_p_minus_y_over_n() {
        let logits = Tensor::zeros(&[1, 2]);
        let out = CrossEntropy::new().compute(&logits, &[0], None).unwrap();
        // p = [0.5, 0.5], y = [1, 0] -> grad = [-0.5, 0.5]
        assert!((out.grad_logits.data()[0] + 0.5).abs() < 1e-6);
        assert!((out.grad_logits.data()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn weights_scale_loss_and_grad() {
        let logits = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]).unwrap();
        let base = CrossEntropy::new().compute(&logits, &[1], None).unwrap();
        let weighted = CrossEntropy::new()
            .compute(&logits, &[1], Some(&[3.0]))
            .unwrap();
        assert!((weighted.loss - 3.0 * base.loss).abs() < 1e-5);
        for (a, b) in weighted
            .grad_logits
            .data()
            .iter()
            .zip(base.grad_logits.data().iter())
        {
            assert!((a - 3.0 * b).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_numerical() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 0.9, -1.0, 0.1, 0.4], &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let weights = [1.5f32, 0.5];
        let ce = CrossEntropy::new();
        let out = ce.compute(&logits, &labels, Some(&weights)).unwrap();
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut p = logits.clone();
            p.data_mut()[i] += eps;
            let mut m = logits.clone();
            m.data_mut()[i] -= eps;
            let lp = ce.compute(&p, &labels, Some(&weights)).unwrap().loss;
            let lm = ce.compute(&m, &labels, Some(&weights)).unwrap().loss;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - out.grad_logits.data()[i]).abs() < 1e-3, "logit {i}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let ce = CrossEntropy::new();
        let logits = Tensor::zeros(&[2, 3]);
        assert!(ce.compute(&logits, &[0], None).is_err()); // label count
        assert!(ce.compute(&logits, &[0, 3], None).is_err()); // label range
        assert!(ce.compute(&logits, &[0, 1], Some(&[1.0])).is_err()); // weight count
        assert!(ce.compute(&logits, &[0, 1], Some(&[1.0, -1.0])).is_err()); // negative
        assert!(ce.compute(&Tensor::zeros(&[3]), &[0], None).is_err()); // rank
    }
}
