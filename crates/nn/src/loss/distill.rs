//! Knowledge-distillation loss for Born-Again Networks (BANs).

use super::{validate_batch, LossOutput, PROB_EPS};
use crate::error::{NnError, Result};
use edde_tensor::ops::softmax_rows;
use edde_tensor::Tensor;

/// The loss BANs trains each generation with: a convex combination of
/// ground-truth cross-entropy and cross-entropy against the teacher's
/// (temperature-softened) soft targets.
///
/// ```text
/// L = (1 − λ)·CE(y, p)  +  λ·τ²·CE(q_τ, p_τ)
/// ```
///
/// where `p_τ = softmax(z/τ)` and `q_τ` is the teacher's τ-softened softmax
/// output supplied by the caller. The `τ²` factor keeps the soft-target
/// gradient magnitude comparable across temperatures (Hinton et al., 2015).
#[derive(Debug, Clone, Copy)]
pub struct Distillation {
    /// Weight λ of the soft-target term, in `[0, 1]`.
    pub lambda: f32,
    /// Softmax temperature τ > 0.
    pub temperature: f32,
}

impl Distillation {
    /// A distillation loss; panics if the configuration is out of range.
    pub fn new(lambda: f32, temperature: f32) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
        assert!(temperature > 0.0, "temperature must be positive");
        Distillation {
            lambda,
            temperature,
        }
    }

    /// Computes loss and logits gradient for one batch.
    ///
    /// `teacher_probs` must be the teacher's τ-softened softmax output,
    /// `[N, k]`.
    pub fn compute(
        &self,
        logits: &Tensor,
        labels: &[usize],
        teacher_probs: &Tensor,
    ) -> Result<LossOutput> {
        let (n, k) = validate_batch(logits, labels)?;
        if teacher_probs.dims() != [n, k] {
            return Err(NnError::BadLossInput(format!(
                "teacher soft targets must be [{n}, {k}], got {:?}",
                teacher_probs.dims()
            )));
        }
        let tau = self.temperature;
        let probs = softmax_rows(logits)?;
        let soft_logits = logits.map(|z| z / tau);
        let probs_tau = softmax_rows(&soft_logits)?;
        let inv_n = 1.0 / n as f32;
        let mut grad = Tensor::zeros(&[n, k]);
        let mut loss = 0.0f64;
        for i in 0..n {
            let p = &probs.data()[i * k..(i + 1) * k];
            let pt = &probs_tau.data()[i * k..(i + 1) * k];
            let q = &teacher_probs.data()[i * k..(i + 1) * k];
            let g = &mut grad.data_mut()[i * k..(i + 1) * k];

            // hard-label part
            let p_y = p[labels[i]].max(PROB_EPS);
            let mut sample_loss = (1.0 - self.lambda) * (-p_y.ln());
            for (c, gv) in g.iter_mut().enumerate() {
                let y = if c == labels[i] { 1.0 } else { 0.0 };
                *gv = (1.0 - self.lambda) * (p[c] - y);
            }

            // soft-target part: τ²·CE(q, p_τ); d/dz = τ·(p_τ − q)
            if self.lambda > 0.0 {
                let mut soft_ce = 0.0f32;
                for c in 0..k {
                    soft_ce -= q[c] * pt[c].max(PROB_EPS).ln();
                }
                sample_loss += self.lambda * tau * tau * soft_ce;
                for c in 0..k {
                    g[c] += self.lambda * tau * (pt[c] - q[c]);
                }
            }

            loss += f64::from(sample_loss);
            for gv in g.iter_mut() {
                *gv *= inv_n;
            }
        }
        Ok(LossOutput {
            loss: (loss * f64::from(inv_n)) as f32,
            grad_logits: grad,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::CrossEntropy;

    #[test]
    fn lambda_zero_is_plain_cross_entropy() {
        let logits = Tensor::from_vec(vec![0.2, -0.4, 1.1, 0.0, 0.5, -0.5], &[2, 3]).unwrap();
        let labels = [0usize, 2];
        let q = Tensor::full(&[2, 3], 1.0 / 3.0);
        let kd = Distillation::new(0.0, 1.0)
            .compute(&logits, &labels, &q)
            .unwrap();
        let ce = CrossEntropy::new().compute(&logits, &labels, None).unwrap();
        assert!((kd.loss - ce.loss).abs() < 1e-6);
    }

    #[test]
    fn matching_teacher_minimizes_soft_term_gradient() {
        let logits = Tensor::from_vec(vec![1.0, -0.5, 0.25], &[1, 3]).unwrap();
        let q = edde_tensor::ops::softmax_rows(&logits).unwrap();
        let kd = Distillation::new(1.0, 1.0)
            .compute(&logits, &[0], &q)
            .unwrap();
        // p_τ == q -> soft gradient vanishes; hard part has weight 0
        assert!(kd.grad_logits.max_abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_numerical() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 0.9, -1.0, 0.1, 0.4], &[2, 3]).unwrap();
        let labels = [1usize, 0];
        let q = Tensor::from_vec(vec![0.6, 0.3, 0.1, 0.2, 0.5, 0.3], &[2, 3]).unwrap();
        let kd = Distillation::new(0.7, 2.0);
        let out = kd.compute(&logits, &labels, &q).unwrap();
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut p = logits.clone();
            p.data_mut()[i] += eps;
            let mut m = logits.clone();
            m.data_mut()[i] -= eps;
            let lp = kd.compute(&p, &labels, &q).unwrap().loss;
            let lm = kd.compute(&m, &labels, &q).unwrap().loss;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - out.grad_logits.data()[i]).abs() < 2e-3, "logit {i}");
        }
    }

    #[test]
    fn constructor_validates_config() {
        assert!(std::panic::catch_unwind(|| Distillation::new(1.5, 1.0)).is_err());
        assert!(std::panic::catch_unwind(|| Distillation::new(0.5, 0.0)).is_err());
    }

    #[test]
    fn rejects_mismatched_teacher() {
        let logits = Tensor::zeros(&[2, 3]);
        let q = Tensor::zeros(&[1, 3]);
        assert!(Distillation::new(0.5, 1.0)
            .compute(&logits, &[0, 1], &q)
            .is_err());
    }
}
