//! A named, cloneable model: the unit ensemble methods operate on.

use crate::error::{NnError, Result};
use crate::infer::{with_thread_ctx, InferCtx};
use crate::layer::Layer;
use crate::param::{Mode, Param};
use edde_tensor::ops::softmax_rows;
use edde_tensor::Tensor;

/// A complete model: a root [`Layer`] plus metadata.
///
/// `Network` is what ensemble methods snapshot, transfer knowledge between,
/// and combine. It exposes ordered parameter access (definition order =
/// input→output), which the β-knowledge-transfer of EDDE depends on.
#[derive(Clone)]
pub struct Network {
    root: Box<dyn Layer>,
    arch: String,
    num_classes: usize,
}

impl Network {
    /// Wraps a root layer. `arch` is a human-readable architecture tag
    /// (`"resnet-8"`, `"textcnn"`, ...) used in reports.
    pub fn new(root: Box<dyn Layer>, arch: impl Into<String>, num_classes: usize) -> Self {
        Network {
            root,
            arch: arch.into(),
            num_classes,
        }
    }

    /// Architecture tag.
    pub fn arch(&self) -> &str {
        &self.arch
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Pure forward pass producing logits: `&self` plus an explicit
    /// [`InferCtx`]. Bit-identical to [`Network::train_forward`] with
    /// [`Mode::Eval`]; this is the path frozen serving uses.
    pub fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        let logits = self.root.forward(input, ctx)?;
        if logits.rank() != 2 || logits.dims()[1] != self.num_classes {
            let got = logits.dims().to_vec();
            ctx.recycle(logits);
            return Err(NnError::BadInput {
                layer: "Network",
                expected: format!("[N, {}] logits", self.num_classes),
                got,
            });
        }
        Ok(logits)
    }

    /// Forward pass producing logits, caching backward state.
    pub fn train_forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let logits = self.root.train_forward(input, mode)?;
        if logits.rank() != 2 || logits.dims()[1] != self.num_classes {
            return Err(NnError::BadInput {
                layer: "Network",
                expected: format!("[N, {}] logits", self.num_classes),
                got: logits.dims().to_vec(),
            });
        }
        Ok(logits)
    }

    /// Backward pass from a logits gradient; returns the input gradient.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Result<Tensor> {
        self.root.backward(grad_logits)
    }

    /// Evaluation-mode softmax probabilities (`[N, k]`) — the "soft target"
    /// the paper's diversity machinery is built on. Runs on the pure path
    /// with this thread's shared context.
    pub fn predict_proba(&self, input: &Tensor) -> Result<Tensor> {
        with_thread_ctx(|ctx| {
            let logits = self.forward(input, ctx)?;
            let probs = softmax_rows(&logits)?;
            ctx.recycle(logits);
            Ok(probs)
        })
    }

    /// Evaluation-mode hard label predictions.
    pub fn predict(&self, input: &Tensor) -> Result<Vec<usize>> {
        with_thread_ctx(|ctx| {
            let logits = self.forward(input, ctx)?;
            let labels = edde_tensor::ops::argmax_rows(&logits)?;
            ctx.recycle(logits);
            Ok(labels)
        })
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.root.zero_grad();
    }

    /// Visits every trainable parameter in definition order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.root.visit_params("", f);
    }

    /// Visits every non-trainable buffer (batch-norm running stats).
    pub fn visit_buffers(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        self.root.visit_buffers("", f);
    }

    /// Read-only [`Network::visit_params`]: same paths, same order.
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&str, &Param)) {
        self.root.visit_params_ref("", f);
    }

    /// Read-only [`Network::visit_buffers`].
    pub fn visit_buffers_ref(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        self.root.visit_buffers_ref("", f);
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params_ref(&mut |_, p| n += p.len());
        n
    }

    /// Ordered `(path, element_count)` pairs for every parameter tensor.
    /// The order is stable and topological (inputs first), which is what
    /// β-prefix knowledge transfer slices on.
    pub fn param_layout(&self) -> Vec<(String, usize)> {
        let mut layout = Vec::new();
        self.visit_params_ref(&mut |name, p| layout.push((name.to_string(), p.len())));
        layout
    }

    /// Exports all parameters **and** buffers as named tensors. Parameter
    /// entries come first, in definition order; buffers follow.
    pub fn export_state(&self) -> Vec<(String, Tensor)> {
        let mut state = Vec::new();
        self.visit_params_ref(&mut |name, p| state.push((name.to_string(), p.value.clone())));
        self.visit_buffers_ref(&mut |name, t| state.push((name.to_string(), t.clone())));
        state
    }

    /// Imports a state previously produced by [`Network::export_state`] on a
    /// network of the same architecture. Every entry must match an existing
    /// parameter/buffer by name and shape; extra or missing entries are
    /// errors (a partial import is what
    /// `edde_core::transfer` is for — it is deliberate, not accidental).
    pub fn import_state(&mut self, state: &[(String, Tensor)]) -> Result<()> {
        use std::collections::HashMap;
        let map: HashMap<&str, &Tensor> = state.iter().map(|(n, t)| (n.as_str(), t)).collect();
        if map.len() != state.len() {
            return Err(NnError::StateMismatch("duplicate names in state".into()));
        }
        let mut missing: Vec<String> = Vec::new();
        let mut seen = 0usize;
        let mut shape_err: Option<String> = None;
        self.visit_params(&mut |name, p| {
            if let Some(t) = map.get(name) {
                if t.dims() == p.value.dims() {
                    p.value = (*t).clone();
                    seen += 1;
                } else if shape_err.is_none() {
                    shape_err = Some(format!(
                        "{name}: expected {:?}, got {:?}",
                        p.value.dims(),
                        t.dims()
                    ));
                }
            } else {
                missing.push(name.to_string());
            }
        });
        self.visit_buffers(&mut |name, buf| {
            if let Some(t) = map.get(name) {
                if t.dims() == buf.dims() {
                    *buf = (*t).clone();
                    seen += 1;
                } else if shape_err.is_none() {
                    shape_err = Some(format!(
                        "{name}: expected {:?}, got {:?}",
                        buf.dims(),
                        t.dims()
                    ));
                }
            } else {
                missing.push(name.to_string());
            }
        });
        if let Some(e) = shape_err {
            return Err(NnError::StateMismatch(e));
        }
        if !missing.is_empty() {
            return Err(NnError::StateMismatch(format!(
                "state missing entries: {missing:?}"
            )));
        }
        if seen != state.len() {
            return Err(NnError::StateMismatch(format!(
                "state has {} entries but only {seen} matched",
                state.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> Network {
        let mut r = StdRng::seed_from_u64(1);
        mlp(&[4, 8, 3], 0.0, &mut r)
    }

    #[test]
    fn forward_produces_logits_and_probs() {
        let mut n = net();
        let x = Tensor::ones(&[5, 4]);
        let logits = n.train_forward(&x, Mode::Eval).unwrap();
        assert_eq!(logits.dims(), &[5, 3]);

        // the pure path produces the same logits bit for bit
        let mut ctx = InferCtx::new();
        let pure = n.forward(&x, &mut ctx).unwrap();
        assert_eq!(pure.data(), logits.data());
        let probs = n.predict_proba(&x).unwrap();
        for i in 0..5 {
            let s: f32 = probs.row(i).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert_eq!(n.predict(&x).unwrap().len(), 5);
    }

    #[test]
    fn export_import_round_trip() {
        let mut a = net();
        let mut b = net();
        // b starts different (same seed -> same; perturb)
        b.visit_params(&mut |_, p| {
            for v in p.value.data_mut() {
                *v += 1.0;
            }
        });
        let x = Tensor::ones(&[2, 4]);
        let ya = a.train_forward(&x, Mode::Eval).unwrap();
        let yb = b.train_forward(&x, Mode::Eval).unwrap();
        assert_ne!(ya.data(), yb.data());

        let state = a.export_state();
        b.import_state(&state).unwrap();
        let yb2 = b.train_forward(&x, Mode::Eval).unwrap();
        assert_eq!(ya.data(), yb2.data());
    }

    #[test]
    fn import_rejects_bad_state() {
        let mut a = net();
        let mut state = a.export_state();
        state.pop();
        assert!(a.import_state(&state).is_err()); // missing entry
        let mut state2 = a.export_state();
        state2[0].1 = Tensor::zeros(&[1, 1]);
        assert!(a.import_state(&state2).is_err()); // wrong shape
    }

    #[test]
    fn param_layout_is_ordered_and_complete() {
        let n = net();
        let layout = n.param_layout();
        // mlp [4,8,3]: dense1 (w,b) then dense2 (w,b)
        assert_eq!(layout.len(), 4);
        assert_eq!(layout[0].1, 32);
        assert_eq!(layout[1].1, 8);
        assert_eq!(layout[2].1, 24);
        assert_eq!(layout[3].1, 3);
        assert_eq!(n.param_count(), 32 + 8 + 24 + 3);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = net();
        let mut b = a.clone();
        b.visit_params(&mut |_, p| p.value.data_mut().fill(0.0));
        let x = Tensor::ones(&[1, 4]);
        let ya = a.train_forward(&x, Mode::Eval).unwrap();
        let yb = b.train_forward(&x, Mode::Eval).unwrap();
        assert_ne!(ya.data(), yb.data());
    }
}
