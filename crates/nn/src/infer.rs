//! The inference context: everything a *pure* forward pass needs.
//!
//! [`crate::layer::Layer::forward`] takes `&self` plus an [`InferCtx`]
//! instead of `&mut self` — the model holds only frozen parameters, while
//! all per-pass state (activation buffers, dropout mode and randomness)
//! lives in the context. One model can then serve any number of threads
//! concurrently, each with its own context, with zero member cloning.
//!
//! A context owns a [`BufferPool`]: `alloc` hands out activation tensors
//! from an owned free list and `recycle` returns them, so after the first
//! batch has warmed the pool a forward pass is allocation-free
//! ([`InferCtx::fresh_allocs`] stops growing — the property the zero
//! steady-state-allocation tests pin). Kernel working sets (im2col columns)
//! come from the thread-local scratch arena underneath and are likewise
//! warm after one batch.
//!
//! The context is deliberately **not** `Sync`: it is per-thread state.
//! [`with_thread_ctx`] lazily provides one per thread (always in
//! [`Mode::Eval`]), which is what the serving entry points use when fanning
//! ensemble members out over the worker pool.

use crate::param::Mode;
use edde_tensor::scratch::{BufferPool, TypedPool};
use edde_tensor::{EddeConfig, Tensor};
use std::cell::RefCell;

/// Per-pass state for [`crate::layer::Layer::forward`].
#[derive(Debug)]
pub struct InferCtx {
    mode: Mode,
    pool: BufferPool,
    qi8: TypedPool<i8>,
    qi32: TypedPool<i32>,
    streams: u64,
}

impl InferCtx {
    /// A fresh evaluation-mode context.
    pub fn new() -> Self {
        InferCtx::with_mode(Mode::Eval)
    }

    /// A fresh context in the given mode. [`Mode::Train`] makes dropout
    /// active (drawing from the context's derived streams); batch
    /// normalization always uses its frozen running statistics on the pure
    /// path, because updating them would mutate the model.
    pub fn with_mode(mode: Mode) -> Self {
        InferCtx {
            mode,
            pool: BufferPool::new(),
            qi8: TypedPool::new(),
            qi32: TypedPool::new(),
            streams: 0,
        }
    }

    /// An evaluation-mode context sized from `config`: each of the
    /// context's pools retains at most [`EddeConfig::pool_retain`]
    /// buffers (`EDDE_POOL_RETAIN`, default 32 — comfortably above any
    /// single pass's live-buffer count, so steady state stays
    /// allocation-free while idle memory on a long-lived server is
    /// bounded). The config is consulted only here, at construction.
    pub fn from_config(config: &EddeConfig) -> Self {
        let mut ctx = InferCtx::new();
        ctx.pool.set_retain_limit(config.pool_retain);
        ctx.qi8.set_retain_limit(config.pool_retain);
        ctx.qi32.set_retain_limit(config.pool_retain);
        ctx
    }

    /// The forward mode layers should honour.
    #[inline]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Switches the forward mode (owned contexts only — the shared
    /// per-thread context stays in eval mode).
    pub fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
    }

    /// Hands out a tensor of the given shape with **unspecified contents**,
    /// backed by the context's buffer pool. Callers must fully overwrite it.
    pub fn alloc(&mut self, dims: &[usize]) -> Tensor {
        let len = dims.iter().product();
        let buf = self.pool.take(len);
        Tensor::from_vec(buf, dims).expect("pool buffer length matches dims")
    }

    /// Returns a tensor's backing buffer to the pool for reuse.
    pub fn recycle(&mut self, t: Tensor) {
        self.pool.give(t.into_vec());
    }

    /// An `i8` staging buffer (quantized activations) with unspecified
    /// contents, from the context's typed free list.
    pub fn alloc_i8(&mut self, len: usize) -> Vec<i8> {
        self.qi8.take(len)
    }

    /// Returns an `i8` staging buffer for reuse.
    pub fn recycle_i8(&mut self, buf: Vec<i8>) {
        self.qi8.give(buf);
    }

    /// An `i32` accumulator buffer (quantized gemm output) with
    /// unspecified contents.
    pub fn alloc_i32(&mut self, len: usize) -> Vec<i32> {
        self.qi32.take(len)
    }

    /// Returns an `i32` accumulator buffer for reuse.
    pub fn recycle_i32(&mut self, buf: Vec<i32>) {
        self.qi32.give(buf);
    }

    /// Number of `alloc`/`alloc_i8`/`alloc_i32` calls that had to touch
    /// the heap. Constant across repeated identical passes once the pools
    /// are warm.
    pub fn fresh_allocs(&self) -> usize {
        self.pool.misses() + self.qi8.misses() + self.qi32.misses()
    }

    /// A dropout randomness stream for one layer application, derived from
    /// the layer's seed and a per-context draw counter. Only consumed in
    /// [`Mode::Train`]; a fresh context replays the same streams, so
    /// train-mode inference (e.g. MC dropout) is reproducible per context.
    pub fn dropout_stream(&mut self, layer_seed: u64) -> DropoutStream {
        let salt = self.streams;
        self.streams += 1;
        DropoutStream::new(layer_seed ^ salt.wrapping_mul(0xA076_1D64_78BD_642F))
    }
}

impl Default for InferCtx {
    fn default() -> Self {
        InferCtx::new()
    }
}

/// A splitmix64-backed `f32` stream for train-mode dropout on the pure
/// forward path (the mutable path keeps its own per-layer stream).
#[derive(Debug, Clone)]
pub struct DropoutStream {
    state: u64,
}

impl DropoutStream {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        DropoutStream { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 24 bits of precision.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

thread_local! {
    // Sized from the environment once per thread, at first use — the
    // per-call entry points never re-read it.
    static THREAD_CTX: RefCell<InferCtx> =
        RefCell::new(InferCtx::from_config(&EddeConfig::from_env()));
}

/// Runs `f` with this thread's shared evaluation-mode context. Worker
/// threads each get their own, so pool-parallel member fan-out needs no
/// locking and stays allocation-free per thread in steady state. Falls back
/// to a fresh context when re-entered or during thread teardown.
pub fn with_thread_ctx<R>(f: impl FnOnce(&mut InferCtx) -> R) -> R {
    let mut f = Some(f);
    let mut out: Option<R> = None;
    let _ = THREAD_CTX.try_with(|cell| {
        if let Ok(mut ctx) = cell.try_borrow_mut() {
            let f = f.take().expect("closure consumed at most once");
            out = Some(f(&mut ctx));
        }
    });
    match (out, f) {
        (Some(r), _) => r,
        (None, Some(f)) => f(&mut InferCtx::new()),
        (None, None) => unreachable!("closure consumed without producing a result"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_recycle_is_allocation_free_in_steady_state() {
        let mut ctx = InferCtx::new();
        for &dims in &[&[4usize, 8][..], &[2, 16][..], &[4, 8][..]] {
            let t = ctx.alloc(dims);
            ctx.recycle(t);
        }
        let warm = ctx.fresh_allocs();
        for _ in 0..5 {
            for &dims in &[&[4usize, 8][..], &[2, 16][..], &[4, 8][..]] {
                let t = ctx.alloc(dims);
                ctx.recycle(t);
            }
        }
        assert_eq!(ctx.fresh_allocs(), warm);
    }

    #[test]
    fn quant_staging_is_allocation_free_in_steady_state() {
        let mut ctx = InferCtx::new();
        for _ in 0..2 {
            let q = ctx.alloc_i8(256);
            let acc = ctx.alloc_i32(64);
            ctx.recycle_i8(q);
            ctx.recycle_i32(acc);
        }
        let warm = ctx.fresh_allocs();
        for _ in 0..5 {
            let q = ctx.alloc_i8(256);
            let acc = ctx.alloc_i32(64);
            ctx.recycle_i8(q);
            ctx.recycle_i32(acc);
        }
        assert_eq!(ctx.fresh_allocs(), warm);
    }

    #[test]
    fn thread_ctx_is_reusable_and_eval_mode() {
        let a = with_thread_ctx(|ctx| {
            assert_eq!(ctx.mode(), Mode::Eval);
            let t = ctx.alloc(&[2, 2]);
            let ptr = t.data().as_ptr() as usize;
            ctx.recycle(t);
            ptr
        });
        let b = with_thread_ctx(|ctx| {
            let t = ctx.alloc(&[2, 2]);
            let ptr = t.data().as_ptr() as usize;
            ctx.recycle(t);
            ptr
        });
        assert_eq!(a, b, "thread context retains its pool across calls");
    }

    #[test]
    fn dropout_streams_differ_per_draw_and_replay_per_ctx() {
        let mut a = InferCtx::with_mode(Mode::Train);
        let s1: Vec<f32> = {
            let mut s = a.dropout_stream(7);
            (0..4).map(|_| s.next_f32()).collect()
        };
        let s2: Vec<f32> = {
            let mut s = a.dropout_stream(7);
            (0..4).map(|_| s.next_f32()).collect()
        };
        assert_ne!(s1, s2, "successive draws use distinct streams");
        let mut b = InferCtx::with_mode(Mode::Train);
        let r1: Vec<f32> = {
            let mut s = b.dropout_stream(7);
            (0..4).map(|_| s.next_f32()).collect()
        };
        assert_eq!(s1, r1, "a fresh context replays the same streams");
        assert!(s1.iter().all(|v| (0.0..1.0).contains(v)));
    }
}
