//! Trainable parameters and the train/eval mode switch.

use edde_tensor::Tensor;

/// Whether a forward pass is part of training or evaluation.
///
/// Batch normalization and dropout behave differently in the two modes,
/// exactly as in the paper's Keras setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Update batch statistics, apply dropout.
    Train,
    /// Use running statistics, disable dropout.
    Eval,
}

impl Mode {
    /// True in [`Mode::Train`].
    #[inline]
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// A trainable tensor together with its accumulated gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initialized value with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad }
    }

    /// Number of scalar parameters.
    #[inline]
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Accumulates `g` into the gradient. Panics in debug builds if shapes
    /// disagree (that is always a programming error inside a layer).
    pub fn accumulate_grad(&mut self, g: &Tensor) {
        debug_assert_eq!(self.grad.dims(), g.dims());
        for (a, &b) in self.grad.data_mut().iter_mut().zip(g.data().iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.data(), &[0.0; 6]);
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
    }

    #[test]
    fn grad_accumulates_and_resets() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        p.accumulate_grad(&Tensor::from_slice(&[1.0, 2.0]));
        p.accumulate_grad(&Tensor::from_slice(&[0.5, 0.5]));
        assert_eq!(p.grad.data(), &[1.5, 2.5]);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn mode_flags() {
        assert!(Mode::Train.is_train());
        assert!(!Mode::Eval.is_train());
    }
}
