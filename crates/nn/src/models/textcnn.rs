//! Text-CNN (Kim, 2014) — the paper's NLP base model.
//!
//! Embedding → parallel 1-D convolution banks (one per n-gram width) →
//! ReLU → max-over-time pooling → feature concatenation → dropout → linear.

use crate::error::{NnError, Result};
use crate::infer::InferCtx;
use crate::layer::{join_path, Layer};
use crate::layers::{Conv1d, Dense, Dropout, Embedding, MaxOverTime, Relu};
use crate::network::Network;
use crate::param::{Mode, Param};
use edde_tensor::Tensor;
use rand::{Rng, RngExt};

/// Configuration for [`textcnn`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TextCnnConfig {
    /// Vocabulary size (the paper caps IMDB at the 5000 most common words).
    pub vocab: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Convolution kernel widths — Kim (2014) and the paper use `[3, 4, 5]`.
    pub kernel_sizes: Vec<usize>,
    /// Filters per kernel width.
    pub filters: usize,
    /// Dropout probability before the classifier.
    pub dropout: f32,
    /// Output classes (2 for IMDB/MR sentiment).
    pub num_classes: usize,
}

impl TextCnnConfig {
    /// A small configuration suitable for the synthetic NLP experiments.
    pub fn small(vocab: usize, num_classes: usize) -> Self {
        TextCnnConfig {
            vocab,
            embed_dim: 16,
            kernel_sizes: vec![3, 4, 5],
            filters: 8,
            dropout: 0.3,
            num_classes,
        }
    }
}

/// One convolution branch of the Text-CNN.
#[derive(Clone)]
struct Branch {
    conv: Conv1d,
    relu: Relu,
    pool: MaxOverTime,
}

/// The Text-CNN model as a single composite [`Layer`].
///
/// Parallel branches make this the one architecture that doesn't fit
/// [`crate::layer::Sequential`]; the branch structure also demonstrates how
/// downstream users can compose custom layers.
#[derive(Clone)]
pub struct TextCnn {
    embedding: Embedding,
    branches: Vec<Branch>,
    dropout: Dropout,
    fc: Dense,
    filters: usize,
    cache_embed_dims: Option<Vec<usize>>,
}

impl TextCnn {
    /// Builds the model from a configuration.
    pub fn new(config: &TextCnnConfig, rng_: &mut impl Rng) -> Result<Self> {
        if config.kernel_sizes.is_empty() {
            return Err(NnError::BadConfig(
                "textcnn needs at least one kernel size".into(),
            ));
        }
        if config.vocab == 0 || config.embed_dim == 0 || config.filters == 0 {
            return Err(NnError::BadConfig(
                "textcnn vocab, embed_dim and filters must be positive".into(),
            ));
        }
        let embedding = Embedding::new(config.vocab, config.embed_dim, rng_);
        let branches = config
            .kernel_sizes
            .iter()
            .map(|&k| Branch {
                // pad so even the widest kernel fits short sequences
                conv: Conv1d::new(config.embed_dim, config.filters, k, 1, k / 2, rng_),
                relu: Relu::new(),
                pool: MaxOverTime::new(),
            })
            .collect::<Vec<_>>();
        let feat = config.filters * config.kernel_sizes.len();
        let seed = rng_.random::<u64>();
        Ok(TextCnn {
            embedding,
            branches,
            dropout: Dropout::new(config.dropout, seed),
            fc: Dense::glorot(feat, config.num_classes, rng_),
            filters: config.filters,
            cache_embed_dims: None,
        })
    }
}

impl Layer for TextCnn {
    fn kind(&self) -> &'static str {
        "textcnn"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        let embedded = self.embedding.forward(input, ctx)?; // [N, D, L]
        let n = embedded.dims()[0];
        let nb = self.branches.len();
        let mut features = ctx.alloc(&[n, self.filters * nb]);
        for (bi, branch) in self.branches.iter().enumerate() {
            let c = branch.conv.forward(&embedded, ctx)?;
            let x = branch.relu.forward(&c, ctx)?;
            ctx.recycle(c);
            let pooled = branch.pool.forward(&x, ctx)?; // [N, filters]
            ctx.recycle(x);
            for s in 0..n {
                let dst = &mut features.data_mut()[s * self.filters * nb + bi * self.filters..]
                    [..self.filters];
                dst.copy_from_slice(&pooled.data()[s * self.filters..][..self.filters]);
            }
            ctx.recycle(pooled);
        }
        ctx.recycle(embedded);
        let dropped = self.dropout.forward(&features, ctx)?;
        ctx.recycle(features);
        let out = self.fc.forward(&dropped, ctx)?;
        ctx.recycle(dropped);
        Ok(out)
    }

    fn train_forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let embedded = self.embedding.train_forward(input, mode)?; // [N, D, L]
        self.cache_embed_dims = Some(embedded.dims().to_vec());
        let n = embedded.dims()[0];
        let nb = self.branches.len();
        let mut features = Tensor::zeros(&[n, self.filters * nb]);
        for (bi, branch) in self.branches.iter_mut().enumerate() {
            let mut x = branch.conv.train_forward(&embedded, mode)?;
            x = branch.relu.train_forward(&x, mode)?;
            let pooled = branch.pool.train_forward(&x, mode)?; // [N, filters]
            for s in 0..n {
                let dst = &mut features.data_mut()[s * self.filters * nb + bi * self.filters..]
                    [..self.filters];
                dst.copy_from_slice(&pooled.data()[s * self.filters..][..self.filters]);
            }
        }
        let dropped = self.dropout.train_forward(&features, mode)?;
        self.fc.train_forward(&dropped, mode)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let embed_dims = self
            .cache_embed_dims
            .take()
            .ok_or(NnError::MissingForwardCache("TextCnn"))?;
        let g = self.fc.backward(grad_out)?;
        let g = self.dropout.backward(&g)?;
        let n = g.dims()[0];
        let nb = self.branches.len();
        // Accumulate each branch's gradient w.r.t. the shared embedding.
        let mut g_embed = Tensor::zeros(&embed_dims);
        for (bi, branch) in self.branches.iter_mut().enumerate() {
            let mut g_branch = Tensor::zeros(&[n, self.filters]);
            for s in 0..n {
                let src = &g.data()[s * self.filters * nb + bi * self.filters..][..self.filters];
                g_branch.data_mut()[s * self.filters..][..self.filters].copy_from_slice(src);
            }
            let gp = branch.pool.backward(&g_branch)?;
            let gr = branch.relu.backward(&gp)?;
            let ge = branch.conv.backward(&gr)?;
            for (a, &b) in g_embed.data_mut().iter_mut().zip(ge.data().iter()) {
                *a += b;
            }
        }
        self.embedding.backward(&g_embed)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        self.embedding
            .visit_params(&join_path(prefix, "embedding"), f);
        for (i, branch) in self.branches.iter_mut().enumerate() {
            branch
                .conv
                .visit_params(&join_path(prefix, &format!("conv{i}")), f);
        }
        self.fc.visit_params(&join_path(prefix, "fc"), f);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        self.embedding
            .visit_params_ref(&join_path(prefix, "embedding"), f);
        for (i, branch) in self.branches.iter().enumerate() {
            branch
                .conv
                .visit_params_ref(&join_path(prefix, &format!("conv{i}")), f);
        }
        self.fc.visit_params_ref(&join_path(prefix, "fc"), f);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Builds a Text-CNN [`Network`] from a configuration.
pub fn textcnn(config: &TextCnnConfig, rng_: &mut impl Rng) -> Result<Network> {
    let model = TextCnn::new(config, rng_)?;
    Ok(Network::new(Box::new(model), "textcnn", config.num_classes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ids(n: usize, l: usize, vocab: usize, r: &mut StdRng) -> Tensor {
        let mut t = Tensor::zeros(&[n, l]);
        for v in t.data_mut() {
            *v = r.random_range(0..vocab) as f32;
        }
        t
    }

    #[test]
    fn forward_backward_shapes() {
        let mut r = StdRng::seed_from_u64(0);
        let cfg = TextCnnConfig::small(50, 2);
        let mut net = textcnn(&cfg, &mut r).unwrap();
        let x = ids(4, 20, 50, &mut r);
        let y = net.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        let g = net.backward(&Tensor::ones(&[4, 2])).unwrap();
        assert_eq!(g.dims(), &[4, 20]);
    }

    #[test]
    fn learns_a_token_marker_task() {
        // class 1 sentences contain token 1 somewhere; class 0 don't.
        let mut r = StdRng::seed_from_u64(1);
        let cfg = TextCnnConfig {
            vocab: 10,
            embed_dim: 8,
            kernel_sizes: vec![3],
            filters: 4,
            dropout: 0.0,
            num_classes: 2,
        };
        let mut net = textcnn(&cfg, &mut r).unwrap();
        let n = 32;
        let l = 12;
        let mut x = Tensor::zeros(&[n, l]);
        let mut labels = Vec::new();
        for s in 0..n {
            let cls = s % 2;
            for t in 0..l {
                x.data_mut()[s * l + t] = (2 + r.random_range(0..8)) as f32;
            }
            if cls == 1 {
                let pos = r.random_range(0..l);
                x.data_mut()[s * l + pos] = 1.0;
            }
            labels.push(cls);
        }
        let ce = crate::loss::CrossEntropy::new();
        let mut opt = crate::optim::Sgd::new(0.1, 0.9, 0.0);
        let mut last = f32::INFINITY;
        for _ in 0..60 {
            net.zero_grad();
            let logits = net.train_forward(&x, Mode::Train).unwrap();
            let out = ce.compute(&logits, &labels, None).unwrap();
            net.backward(&out.grad_logits).unwrap();
            opt.step(&mut net).unwrap();
            last = out.loss;
        }
        assert!(last < 0.3, "loss {last}");
        let probs = net.predict_proba(&x).unwrap();
        let acc = crate::metrics::accuracy(&probs, &labels).unwrap();
        assert!(acc > 0.9, "acc {acc}");
    }

    #[test]
    fn config_validation() {
        let mut r = StdRng::seed_from_u64(0);
        let mut cfg = TextCnnConfig::small(10, 2);
        cfg.kernel_sizes.clear();
        assert!(textcnn(&cfg, &mut r).is_err());
        let mut cfg2 = TextCnnConfig::small(10, 2);
        cfg2.vocab = 0;
        assert!(textcnn(&cfg2, &mut r).is_err());
    }

    #[test]
    fn param_paths_cover_all_branches() {
        let mut r = StdRng::seed_from_u64(0);
        let cfg = TextCnnConfig::small(20, 2);
        let net = textcnn(&cfg, &mut r).unwrap();
        let layout = net.param_layout();
        let names: Vec<_> = layout.iter().map(|(n, _)| n.clone()).collect();
        assert!(names.contains(&"embedding.table".to_string()));
        assert!(names.contains(&"conv0.weight".to_string()));
        assert!(names.contains(&"conv2.weight".to_string()));
        assert!(names.contains(&"fc.weight".to_string()));
    }
}
