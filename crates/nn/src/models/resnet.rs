//! CIFAR-style ResNet (He et al., 2016).
//!
//! The family the paper trains is ResNet-`6n+2`: a 3×3 convolution stem,
//! three stages of `n` basic blocks with widths `w, 2w, 4w`, strided
//! transitions between stages, global average pooling, and a linear head.
//! The paper uses ResNet-32 (`n = 5`, `w = 16`) on 32×32 CIFAR; the
//! reproduction defaults to smaller depths/widths that train on CPU, while
//! `ResNetConfig { depth: 32, width: 16, .. }` reconstructs the paper's
//! exact topology.

use crate::blocks::BasicBlock;
use crate::error::{NnError, Result};
use crate::layer::Sequential;
use crate::layers::{BatchNorm2d, Conv2d, Dense, GlobalAvgPool, Relu};
use crate::network::Network;
use rand::Rng;

/// Configuration for [`resnet`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ResNetConfig {
    /// Total depth; must be `6n + 2` (8, 14, 20, 26, 32, ...).
    pub depth: usize,
    /// Stem width `w` (stages are `w`, `2w`, `4w`). The paper uses 16.
    pub width: usize,
    /// Input channels (3 for RGB images).
    pub in_channels: usize,
    /// Output classes.
    pub num_classes: usize,
}

impl ResNetConfig {
    /// The scaled-down default used by the reproduction experiments:
    /// ResNet-8 with width 8.
    pub fn small(in_channels: usize, num_classes: usize) -> Self {
        ResNetConfig {
            depth: 8,
            width: 8,
            in_channels,
            num_classes,
        }
    }

    /// The paper's ResNet-32 (width 16).
    pub fn paper_resnet32(num_classes: usize) -> Self {
        ResNetConfig {
            depth: 32,
            width: 16,
            in_channels: 3,
            num_classes,
        }
    }
}

/// Builds a CIFAR-style ResNet per `config`.
pub fn resnet(config: &ResNetConfig, rng_: &mut impl Rng) -> Result<Network> {
    if config.depth < 8 || !(config.depth - 2).is_multiple_of(6) {
        return Err(NnError::BadConfig(format!(
            "resnet depth must be 6n+2 with n >= 1, got {}",
            config.depth
        )));
    }
    if config.width == 0 || config.num_classes == 0 || config.in_channels == 0 {
        return Err(NnError::BadConfig(
            "resnet width, classes and channels must be positive".into(),
        ));
    }
    let n = (config.depth - 2) / 6;
    let w = config.width;
    let mut seq = Sequential::new();
    seq.push(
        "stem.conv",
        Box::new(Conv2d::new(config.in_channels, w, 3, 1, 1, false, rng_)),
    );
    seq.push("stem.bn", Box::new(BatchNorm2d::new(w)));
    seq.push("stem.relu", Box::new(Relu::new()));
    let widths = [w, 2 * w, 4 * w];
    let mut in_c = w;
    for (stage, &out_c) in widths.iter().enumerate() {
        for block in 0..n {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            seq.push(
                format!("stage{stage}.block{block}"),
                Box::new(BasicBlock::new(in_c, out_c, stride, rng_)),
            );
            in_c = out_c;
        }
    }
    seq.push("gap", Box::new(GlobalAvgPool::new()));
    seq.push("fc", Box::new(Dense::new(4 * w, config.num_classes, rng_)));
    Ok(Network::new(
        Box::new(seq),
        format!("resnet-{}", config.depth),
        config.num_classes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Mode;
    use edde_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn resnet8_forward_backward() {
        let mut r = StdRng::seed_from_u64(0);
        let cfg = ResNetConfig::small(3, 10);
        let mut net = resnet(&cfg, &mut r).unwrap();
        let x = edde_tensor::rng::rand_uniform(&[2, 3, 16, 16], -1.0, 1.0, &mut r);
        let y = net.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
        let g = net.backward(&Tensor::ones(&[2, 10])).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert!(g.all_finite());
    }

    #[test]
    fn depth_validation() {
        let mut r = StdRng::seed_from_u64(0);
        let bad = ResNetConfig {
            depth: 9,
            width: 8,
            in_channels: 3,
            num_classes: 10,
        };
        assert!(resnet(&bad, &mut r).is_err());
        let ok = ResNetConfig {
            depth: 14,
            width: 4,
            in_channels: 3,
            num_classes: 10,
        };
        assert!(resnet(&ok, &mut r).is_ok());
    }

    #[test]
    fn paper_resnet32_has_expected_structure() {
        let mut r = StdRng::seed_from_u64(0);
        let net = resnet(&ResNetConfig::paper_resnet32(100), &mut r).unwrap();
        assert_eq!(net.arch(), "resnet-32");
        // 15 blocks × 2 convs + stem + head + shortcuts: sanity-check the
        // parameter count is in the ~0.47M region reported for ResNet-32.
        let count = net.param_count();
        assert!((400_000..600_000).contains(&count), "params {count}");
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let mut r = StdRng::seed_from_u64(7);
        let cfg = ResNetConfig::small(3, 4);
        let mut net = resnet(&cfg, &mut r).unwrap();
        let x = edde_tensor::rng::rand_uniform(&[1, 3, 8, 8], -1.0, 1.0, &mut r);
        let y1 = net.train_forward(&x, Mode::Eval).unwrap();
        let y2 = net.train_forward(&x, Mode::Eval).unwrap();
        assert_eq!(y1.data(), y2.data());
    }
}
