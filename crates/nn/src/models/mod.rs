//! Preset architectures used by the paper's experiments.
//!
//! * [`mlp`] — a plain multi-layer perceptron (baseline / tests);
//! * [`resnet`] — CIFAR-style ResNet (`6n+2` layers; the paper's ResNet-32);
//! * [`densenet`] — CIFAR-style DenseNet (`3n·blocks+4` layers; the paper's
//!   DenseNet-40 with growth 12);
//! * [`textcnn`] — Kim (2014) Text-CNN, the paper's NLP base model.

mod densenet;
mod mlp;
mod resnet;
mod textcnn;

pub use densenet::{densenet, DenseNetConfig};
pub use mlp::mlp;
pub use resnet::{resnet, ResNetConfig};
pub use textcnn::{textcnn, TextCnn, TextCnnConfig};
