//! Multi-layer perceptron preset.

use crate::layer::Sequential;
use crate::layers::{Dense, Dropout, Relu};
use crate::network::Network;
use rand::{Rng, RngExt};

/// Builds an MLP with the given layer widths: `dims[0]` inputs, hidden
/// layers with ReLU (and optional dropout), `dims.last()` output classes.
///
/// # Panics
///
/// Panics if fewer than two dims are given.
pub fn mlp(dims: &[usize], dropout_p: f32, rng_: &mut impl Rng) -> Network {
    assert!(dims.len() >= 2, "mlp needs at least [in, out] dims");
    let mut seq = Sequential::new();
    for (i, pair) in dims.windows(2).enumerate() {
        let last = i == dims.len() - 2;
        seq.push(
            format!("fc{i}"),
            Box::new(Dense::new(pair[0], pair[1], rng_)),
        );
        if !last {
            seq.push(format!("relu{i}"), Box::new(Relu::new()));
            if dropout_p > 0.0 {
                let seed = rng_.random::<u64>();
                seq.push(format!("drop{i}"), Box::new(Dropout::new(dropout_p, seed)));
            }
        }
    }
    let classes = *dims.last().unwrap();
    Network::new(Box::new(seq), format!("mlp-{}", dims.len() - 1), classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Mode;
    use edde_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_flow_through() {
        let mut r = StdRng::seed_from_u64(0);
        let mut net = mlp(&[10, 32, 16, 4], 0.1, &mut r);
        let x = Tensor::ones(&[3, 10]);
        let y = net.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[3, 4]);
        assert_eq!(net.num_classes(), 4);
    }

    #[test]
    fn two_layer_variant_has_single_dense() {
        let mut r = StdRng::seed_from_u64(0);
        let net = mlp(&[5, 3], 0.0, &mut r);
        assert_eq!(net.param_layout().len(), 2); // weight + bias
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn rejects_single_dim() {
        let mut r = StdRng::seed_from_u64(0);
        mlp(&[5], 0.0, &mut r);
    }
}
