//! CIFAR-style DenseNet (Huang et al., 2017).
//!
//! The paper uses DenseNet-40 with growth rate 12: a 3×3 stem, three dense
//! blocks of 12 layers each, compression-0.5 transitions, then
//! BN → ReLU → GAP → FC. Depth is `3·n·blocks + 4` with per-block layer
//! count `n`.

use crate::blocks::{DenseLayer, Transition};
use crate::error::{NnError, Result};
use crate::layer::Sequential;
use crate::layers::{BatchNorm2d, Conv2d, Dense, GlobalAvgPool, Relu};
use crate::network::Network;
use rand::Rng;

/// Configuration for [`densenet`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DenseNetConfig {
    /// Dense layers per block.
    pub layers_per_block: usize,
    /// Number of dense blocks (the paper uses 3).
    pub blocks: usize,
    /// Growth rate `k` — channels added per dense layer (paper: 12).
    pub growth: usize,
    /// Stem output channels (paper: 16).
    pub stem_channels: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Output classes.
    pub num_classes: usize,
}

impl DenseNetConfig {
    /// The scaled-down default used by the reproduction experiments
    /// (3 blocks × 2 layers, growth 6 — "DenseNet-22"-ish at toy scale).
    pub fn small(in_channels: usize, num_classes: usize) -> Self {
        DenseNetConfig {
            layers_per_block: 2,
            blocks: 2,
            growth: 6,
            stem_channels: 8,
            in_channels,
            num_classes,
        }
    }

    /// The paper's DenseNet-40 (growth 12).
    pub fn paper_densenet40(num_classes: usize) -> Self {
        DenseNetConfig {
            layers_per_block: 12,
            blocks: 3,
            growth: 12,
            stem_channels: 16,
            in_channels: 3,
            num_classes,
        }
    }

    /// Nominal depth `3·n·blocks + 4` in the DenseNet naming convention.
    pub fn depth(&self) -> usize {
        self.layers_per_block * self.blocks + self.blocks + 1
    }
}

/// Builds a CIFAR-style DenseNet per `config`.
pub fn densenet(config: &DenseNetConfig, rng_: &mut impl Rng) -> Result<Network> {
    if config.layers_per_block == 0 || config.blocks == 0 || config.growth == 0 {
        return Err(NnError::BadConfig(
            "densenet layers_per_block, blocks and growth must be positive".into(),
        ));
    }
    if config.num_classes == 0 || config.in_channels == 0 || config.stem_channels == 0 {
        return Err(NnError::BadConfig(
            "densenet channels and classes must be positive".into(),
        ));
    }
    let mut seq = Sequential::new();
    seq.push(
        "stem.conv",
        Box::new(Conv2d::new(
            config.in_channels,
            config.stem_channels,
            3,
            1,
            1,
            false,
            rng_,
        )),
    );
    let mut channels = config.stem_channels;
    for b in 0..config.blocks {
        for l in 0..config.layers_per_block {
            seq.push(
                format!("block{b}.layer{l}"),
                Box::new(DenseLayer::new(channels, config.growth, rng_)),
            );
            channels += config.growth;
        }
        if b + 1 < config.blocks {
            // compression 0.5 as in DenseNet-BC style transitions
            let out = (channels / 2).max(1);
            seq.push(
                format!("transition{b}"),
                Box::new(Transition::new(channels, out, rng_)),
            );
            channels = out;
        }
    }
    seq.push("head.bn", Box::new(BatchNorm2d::new(channels)));
    seq.push("head.relu", Box::new(Relu::new()));
    seq.push("head.gap", Box::new(GlobalAvgPool::new()));
    seq.push(
        "head.fc",
        Box::new(Dense::new(channels, config.num_classes, rng_)),
    );
    Ok(Network::new(
        Box::new(seq),
        format!("densenet-{}", config.depth()),
        config.num_classes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Mode;
    use edde_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_densenet_forward_backward() {
        let mut r = StdRng::seed_from_u64(0);
        let cfg = DenseNetConfig::small(3, 10);
        let mut net = densenet(&cfg, &mut r).unwrap();
        let x = edde_tensor::rng::rand_uniform(&[2, 3, 8, 8], -1.0, 1.0, &mut r);
        let y = net.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
        let g = net.backward(&Tensor::ones(&[2, 10])).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert!(g.all_finite());
    }

    #[test]
    fn channel_arithmetic_matches_growth() {
        let mut r = StdRng::seed_from_u64(1);
        let cfg = DenseNetConfig {
            layers_per_block: 3,
            blocks: 2,
            growth: 4,
            stem_channels: 8,
            in_channels: 3,
            num_classes: 5,
        };
        let net = densenet(&cfg, &mut r).unwrap();
        // stem 8 -> block0 +12 = 20 -> transition 10 -> block1 +12 = 22
        // head fc must be 22 x 5
        let layout = net.param_layout();
        let fc_w = layout.iter().find(|(n, _)| n == "head.fc.weight").unwrap();
        assert_eq!(fc_w.1, 22 * 5);
    }

    #[test]
    fn config_validation() {
        let mut r = StdRng::seed_from_u64(0);
        let mut bad = DenseNetConfig::small(3, 10);
        bad.growth = 0;
        assert!(densenet(&bad, &mut r).is_err());
    }

    #[test]
    fn paper_densenet40_depth_naming() {
        let cfg = DenseNetConfig::paper_densenet40(100);
        assert_eq!(cfg.depth(), 40);
    }
}
