//! The [`Layer`] trait and the [`Sequential`] container.

use crate::error::Result;
use crate::infer::InferCtx;
use crate::param::{Mode, Param};
use edde_tensor::Tensor;

/// One differentiable computation stage.
///
/// A layer owns its parameters and whatever forward-pass state its backward
/// pass needs. The contract is strict and simple:
///
/// 1. `forward(x, ctx)` is **pure**: `&self` plus an explicit
///    [`InferCtx`] carrying all per-pass state (activation buffers,
///    dropout mode/randomness). It never mutates the layer, so a frozen
///    model can serve any number of threads concurrently, and its
///    evaluation-mode output is bit-identical to
///    `train_forward(x, Mode::Eval)`;
/// 2. `train_forward(x, mode)` caches what backward will need and returns
///    the output;
/// 3. `backward(grad_out)` consumes the cached state, **accumulates**
///    parameter gradients, and returns the gradient with respect to its
///    input;
/// 4. gradients accumulate across calls until [`Layer::zero_grad`].
///
/// Composite layers (residual blocks, dense blocks, whole models) implement
/// the same trait, so a [`crate::network::Network`] is just a named root
/// layer.
pub trait Layer: Send + Sync {
    /// Short human-readable layer kind, e.g. `"dense"` or `"conv2d"`.
    fn kind(&self) -> &'static str;

    /// Pure forward pass: frozen parameters, per-pass state in `ctx`.
    /// In [`Mode::Eval`] (the context default) the output is bit-identical
    /// to [`Layer::train_forward`] with [`Mode::Eval`].
    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor>;

    /// Computes this layer's output, caching backward state.
    fn train_forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Propagates `grad_out` through the layer, accumulating parameter
    /// gradients and returning the input gradient.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Visits every trainable parameter in definition (input→output) order,
    /// passing a dotted path such as `"stage1.block0.conv1.weight"`.
    /// Layers without parameters use the default no-op.
    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut Param)) {}

    /// Visits non-trainable state that still belongs in checkpoints and
    /// knowledge transfer (batch-norm running statistics).
    fn visit_buffers(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut Tensor)) {}

    /// Read-only [`Layer::visit_params`]: same paths, same order, `&self` —
    /// what frozen-model export walks. Layers with parameters must keep the
    /// two visitors in lockstep.
    fn visit_params_ref(&self, _prefix: &str, _f: &mut dyn FnMut(&str, &Param)) {}

    /// Read-only [`Layer::visit_buffers`].
    fn visit_buffers_ref(&self, _prefix: &str, _f: &mut dyn FnMut(&str, &Tensor)) {}

    /// Clones the layer behind a box. Needed because ensemble methods
    /// snapshot whole member networks.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Zeroes all accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params("", &mut |_, p| p.zero_grad());
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Joins a prefix and a component into a dotted parameter path.
pub(crate) fn join_path(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

/// A linear chain of layers applied in order.
#[derive(Clone)]
pub struct Sequential {
    layers: Vec<(String, Box<dyn Layer>)>,
}

impl Sequential {
    /// An empty chain.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a named layer; names become path components in parameter
    /// paths, so keep them short and unique within the chain.
    pub fn push(&mut self, name: impl Into<String>, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push((name.into(), layer));
        self
    }

    /// Builder-style [`Sequential::push`].
    pub fn with(mut self, name: impl Into<String>, layer: Box<dyn Layer>) -> Self {
        self.push(name, layer);
        self
    }

    /// Number of direct child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the chain has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sequential {
    fn kind(&self) -> &'static str {
        "sequential"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        let mut layers = self.layers.iter();
        let Some((_, first)) = layers.next() else {
            let mut out = ctx.alloc(input.dims());
            out.data_mut().copy_from_slice(input.data());
            return Ok(out);
        };
        let mut x = first.forward(input, ctx)?;
        for (_, layer) in layers {
            let y = layer.forward(&x, ctx)?;
            ctx.recycle(x);
            x = y;
        }
        Ok(x)
    }

    fn train_forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        for (_, layer) in &mut self.layers {
            x = layer.train_forward(&x, mode)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut g = grad_out.clone();
        for (_, layer) in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        for (name, layer) in &mut self.layers {
            let path = join_path(prefix, name);
            layer.visit_params(&path, f);
        }
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Tensor)) {
        for (name, layer) in &mut self.layers {
            let path = join_path(prefix, name);
            layer.visit_buffers(&path, f);
        }
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        for (name, layer) in &self.layers {
            let path = join_path(prefix, name);
            layer.visit_params_ref(&path, f);
        }
    }

    fn visit_buffers_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Tensor)) {
        for (name, layer) in &self.layers {
            let path = join_path(prefix, name);
            layer.visit_buffers_ref(&path, f);
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = a*x, with a trainable scalar — small enough to verify Sequential's
    /// plumbing exactly.
    #[derive(Clone)]
    struct ScaleLayer {
        a: Param,
        cache: Option<Tensor>,
    }

    impl ScaleLayer {
        fn new(a: f32) -> Self {
            ScaleLayer {
                a: Param::new(Tensor::scalar(a)),
                cache: None,
            }
        }
    }

    impl Layer for ScaleLayer {
        fn kind(&self) -> &'static str {
            "scale"
        }
        fn forward(&self, input: &Tensor, _ctx: &mut InferCtx) -> Result<Tensor> {
            let a = self.a.value.item()?;
            Ok(input.map(|v| a * v))
        }
        fn train_forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
            self.cache = Some(input.clone());
            let a = self.a.value.item()?;
            Ok(input.map(|v| a * v))
        }
        fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
            let x = self
                .cache
                .take()
                .ok_or(crate::error::NnError::MissingForwardCache("scale"))?;
            let da: f32 = x
                .data()
                .iter()
                .zip(grad_out.data().iter())
                .map(|(xv, gv)| xv * gv)
                .sum();
            self.a.accumulate_grad(&Tensor::scalar(da));
            let a = self.a.value.item()?;
            Ok(grad_out.map(|v| a * v))
        }
        fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
            f(&join_path(prefix, "a"), &mut self.a);
        }
        fn visit_params_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
            f(&join_path(prefix, "a"), &self.a);
        }
        fn clone_box(&self) -> Box<dyn Layer> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn sequential_chains_forward_and_backward() {
        let mut seq = Sequential::new()
            .with("s1", Box::new(ScaleLayer::new(2.0)))
            .with("s2", Box::new(ScaleLayer::new(3.0)));
        let x = Tensor::from_slice(&[1.0, -1.0]);
        let y = seq.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[6.0, -6.0]);

        let g = seq.backward(&Tensor::from_slice(&[1.0, 1.0])).unwrap();
        // dL/dx = a1*a2 = 6 on both coordinates
        assert_eq!(g.data(), &[6.0, 6.0]);

        // The pure path computes the same chain without touching the model.
        let mut ctx = InferCtx::new();
        let yp = seq.forward(&x, &mut ctx).unwrap();
        assert_eq!(yp.data(), &[6.0, -6.0]);
    }

    #[test]
    fn empty_sequential_is_identity_on_the_pure_path() {
        let seq = Sequential::new();
        let x = Tensor::from_slice(&[1.5, -2.5]);
        let mut ctx = InferCtx::new();
        let y = seq.forward(&x, &mut ctx).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn sequential_param_paths_are_dotted() {
        let mut seq = Sequential::new()
            .with("s1", Box::new(ScaleLayer::new(2.0)))
            .with("s2", Box::new(ScaleLayer::new(3.0)));
        let mut names = Vec::new();
        seq.visit_params("net", &mut |name, _| names.push(name.to_string()));
        assert_eq!(names, vec!["net.s1.a", "net.s2.a"]);
    }

    #[test]
    fn zero_grad_clears_every_param() {
        let mut seq = Sequential::new().with("s1", Box::new(ScaleLayer::new(2.0)));
        let x = Tensor::from_slice(&[1.0]);
        seq.train_forward(&x, Mode::Train).unwrap();
        seq.backward(&Tensor::from_slice(&[1.0])).unwrap();
        let mut grads = Vec::new();
        seq.visit_params("", &mut |_, p| grads.push(p.grad.data()[0]));
        assert_eq!(grads, vec![1.0]);
        seq.zero_grad();
        grads.clear();
        seq.visit_params("", &mut |_, p| grads.push(p.grad.data()[0]));
        assert_eq!(grads, vec![0.0]);
    }

    #[test]
    fn boxed_layer_clones_independently() {
        let boxed: Box<dyn Layer> = Box::new(ScaleLayer::new(5.0));
        let mut copy = boxed.clone();
        let mut names = 0;
        copy.visit_params("", &mut |_, p| {
            p.value = Tensor::scalar(1.0);
            names += 1;
        });
        assert_eq!(names, 1);
    }
}
