//! Inverted dropout.

use crate::error::{NnError, Result};
use crate::infer::InferCtx;
use crate::layer::Layer;
use crate::param::Mode;
use edde_tensor::Tensor;

/// A tiny, clonable SplitMix64 generator. `rand`'s `StdRng` is not `Clone`
/// (by design, to avoid accidental stream reuse), but dropout layers *want*
/// clonable state: cloning a model must clone its exact dropout stream so
/// ensemble snapshots stay deterministic.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Inverted dropout: during training, zeroes each activation with
/// probability `p` and scales survivors by `1/(1-p)`; identity in eval mode.
///
/// The layer owns a seeded RNG so a whole model remains deterministic under
/// one construction seed (cloning a model clones the dropout state too).
#[derive(Clone)]
pub struct Dropout {
    p: f32,
    seed: u64,
    rng: SplitMix64,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Dropout with keep scaling, seeded for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0,1), got {p}"
        );
        Dropout {
            p,
            seed,
            rng: SplitMix64::new(seed),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn kind(&self) -> &'static str {
        "dropout"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        let mut out = ctx.alloc(input.dims());
        if !ctx.mode().is_train() || self.p == 0.0 {
            out.data_mut().copy_from_slice(input.data());
            return Ok(out);
        }
        // Train-mode inference (MC dropout) draws from a context-derived
        // stream: the frozen layer never advances its own generator.
        let scale = 1.0 / (1.0 - self.p);
        let mut stream = ctx.dropout_stream(self.seed);
        for (o, &x) in out.data_mut().iter_mut().zip(input.data()) {
            let m = if stream.next_f32() < self.p {
                0.0
            } else {
                scale
            };
            *o = x * m;
        }
        Ok(out)
    }

    fn train_forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if !mode.is_train() || self.p == 0.0 {
            self.mask = None;
            return Ok(input.clone());
        }
        let scale = 1.0 / (1.0 - self.p);
        let mut mask = Tensor::zeros(input.dims());
        for m in mask.data_mut() {
            *m = if self.rng.next_f32() < self.p {
                0.0
            } else {
                scale
            };
        }
        let out = input.zip_map(&mask, |x, m| x * m)?;
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        match self.mask.take() {
            Some(mask) => Ok(grad_out.zip_map(&mask, |g, m| g * m)?),
            // eval-mode forward (or p == 0) is the identity
            None if self.p == 0.0 => Ok(grad_out.clone()),
            None => Err(NnError::MissingForwardCache("Dropout")),
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let y = d.train_forward(&x, Mode::Eval).unwrap();
        assert_eq!(y, x);

        let mut ctx = InferCtx::new();
        let yp = d.forward(&x, &mut ctx).unwrap();
        assert_eq!(yp.data(), x.data());
    }

    #[test]
    fn pure_train_mode_is_reproducible_per_context() {
        let d = Dropout::new(0.5, 11);
        let x = Tensor::ones(&[1_000]);
        let mut a = InferCtx::with_mode(Mode::Train);
        let ya = d.forward(&x, &mut a).unwrap();
        let mut b = InferCtx::with_mode(Mode::Train);
        let yb = d.forward(&x, &mut b).unwrap();
        assert_eq!(ya.data(), yb.data());
        let zeros = ya.data().iter().filter(|&&v| v == 0.0).count();
        assert!((300..700).contains(&zeros), "zeros {zeros}");
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::ones(&[10_000]);
        let y = d.train_forward(&x, Mode::Train).unwrap();
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((4_000..6_000).contains(&zeros), "zeros {zeros}");
        // survivors are scaled
        assert!(y.data().iter().any(|&v| (v - 2.0).abs() < 1e-6));
        // expected value preserved
        let mean = y.data().iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.05);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[100]);
        let y = d.train_forward(&x, Mode::Train).unwrap();
        let g = d.backward(&Tensor::ones(&[100])).unwrap();
        for (yv, gv) in y.data().iter().zip(g.data().iter()) {
            assert_eq!(yv, gv); // identical mask and scale
        }
    }

    #[test]
    fn zero_p_never_needs_cache() {
        let mut d = Dropout::new(0.0, 0);
        let x = Tensor::ones(&[4]);
        let y = d.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y, x);
        assert!(d.backward(&x).is_ok());
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn rejects_p_of_one() {
        Dropout::new(1.0, 0);
    }
}
