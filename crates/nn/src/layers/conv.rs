//! Convolution layers (2-D for ResNet/DenseNet, 1-D for Text-CNN).

use crate::error::{NnError, Result};
use crate::infer::InferCtx;
use crate::layer::{join_path, Layer};
use crate::param::{Mode, Param};
use edde_tensor::ops::{
    conv1d, conv1d_backward, conv1d_into, conv2d, conv2d_backward, conv2d_into, out_dim,
};
use edde_tensor::{rng, Tensor};
use rand::Rng;

/// 2-D convolution over `[N, C, H, W]` with square kernels.
#[derive(Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    use_bias: bool,
    cache_input: Option<Tensor>,
}

impl Conv2d {
    /// He-normal initialized convolution. `use_bias` is typically false when
    /// the convolution is followed by batch norm (as in ResNet/DenseNet).
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        use_bias: bool,
        rng_: &mut impl Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = rng::he_normal(&[out_channels, in_channels, kernel, kernel], fan_in, rng_);
        Conv2d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            use_bias,
            cache_input: None,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The (square) kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }
}

impl Layer for Conv2d {
    fn kind(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        if input.rank() != 4 || input.dims()[1] != self.in_channels {
            return Err(NnError::BadInput {
                layer: "Conv2d",
                expected: format!("[N, {}, H, W]", self.in_channels),
                got: input.dims().to_vec(),
            });
        }
        let d = input.dims();
        let oh = out_dim(d[2], self.kernel, self.stride, self.pad)?;
        let ow = out_dim(d[3], self.kernel, self.stride, self.pad)?;
        let mut out = ctx.alloc(&[d[0], self.out_channels, oh, ow]);
        let bias = self.use_bias.then_some(&self.bias.value);
        conv2d_into(
            input,
            &self.weight.value,
            bias,
            self.stride,
            self.pad,
            &mut out,
        )?;
        Ok(out)
    }

    fn train_forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.rank() != 4 || input.dims()[1] != self.in_channels {
            return Err(NnError::BadInput {
                layer: "Conv2d",
                expected: format!("[N, {}, H, W]", self.in_channels),
                got: input.dims().to_vec(),
            });
        }
        self.cache_input = Some(input.clone());
        let bias = self.use_bias.then_some(&self.bias.value);
        Ok(conv2d(
            input,
            &self.weight.value,
            bias,
            self.stride,
            self.pad,
        )?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache_input
            .take()
            .ok_or(NnError::MissingForwardCache("Conv2d"))?;
        let grads = conv2d_backward(&x, &self.weight.value, grad_out, self.stride, self.pad)?;
        self.weight.accumulate_grad(&grads.grad_weight);
        if self.use_bias {
            self.bias.accumulate_grad(&grads.grad_bias);
        }
        Ok(grads.grad_input)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_path(prefix, "weight"), &mut self.weight);
        if self.use_bias {
            f(&join_path(prefix, "bias"), &mut self.bias);
        }
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        f(&join_path(prefix, "weight"), &self.weight);
        if self.use_bias {
            f(&join_path(prefix, "bias"), &self.bias);
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// 1-D convolution over `[N, C, L]` — Text-CNN's n-gram filters.
#[derive(Clone)]
pub struct Conv1d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    cache_input: Option<Tensor>,
}

impl Conv1d {
    /// He-normal initialized 1-D convolution with bias.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng_: &mut impl Rng,
    ) -> Self {
        let fan_in = in_channels * kernel;
        let weight = rng::he_normal(&[out_channels, in_channels, kernel], fan_in, rng_);
        Conv1d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            kernel,
            stride,
            pad,
            cache_input: None,
        }
    }

    /// The kernel (n-gram) width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }
}

impl Layer for Conv1d {
    fn kind(&self) -> &'static str {
        "conv1d"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        if input.rank() != 3 || input.dims()[1] != self.in_channels {
            return Err(NnError::BadInput {
                layer: "Conv1d",
                expected: format!("[N, {}, L]", self.in_channels),
                got: input.dims().to_vec(),
            });
        }
        let d = input.dims();
        let oc = self.weight.value.dims()[0];
        let ol = out_dim(d[2], self.kernel, self.stride, self.pad)?;
        let mut out = ctx.alloc(&[d[0], oc, ol]);
        conv1d_into(
            input,
            &self.weight.value,
            Some(&self.bias.value),
            self.stride,
            self.pad,
            &mut out,
        )?;
        Ok(out)
    }

    fn train_forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.rank() != 3 || input.dims()[1] != self.in_channels {
            return Err(NnError::BadInput {
                layer: "Conv1d",
                expected: format!("[N, {}, L]", self.in_channels),
                got: input.dims().to_vec(),
            });
        }
        self.cache_input = Some(input.clone());
        Ok(conv1d(
            input,
            &self.weight.value,
            Some(&self.bias.value),
            self.stride,
            self.pad,
        )?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache_input
            .take()
            .ok_or(NnError::MissingForwardCache("Conv1d"))?;
        let grads = conv1d_backward(&x, &self.weight.value, grad_out, self.stride, self.pad)?;
        self.weight.accumulate_grad(&grads.grad_weight);
        self.bias.accumulate_grad(&grads.grad_bias);
        Ok(grads.grad_input)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_path(prefix, "weight"), &mut self.weight);
        f(&join_path(prefix, "bias"), &mut self.bias);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        f(&join_path(prefix, "weight"), &self.weight);
        f(&join_path(prefix, "bias"), &self.bias);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv2d_forward_shape() {
        let mut r = StdRng::seed_from_u64(0);
        let mut layer = Conv2d::new(3, 8, 3, 1, 1, false, &mut r);
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = layer.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 8, 8, 8]); // "same" padding

        let mut ctx = InferCtx::new();
        let yp = layer.forward(&x, &mut ctx).unwrap();
        assert_eq!(yp.dims(), y.dims());
        assert_eq!(yp.data(), y.data());

        let mut strided = Conv2d::new(3, 4, 3, 2, 1, false, &mut r);
        let y2 = strided.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y2.dims(), &[2, 4, 4, 4]);
    }

    #[test]
    fn conv2d_rejects_bad_channels() {
        let mut r = StdRng::seed_from_u64(0);
        let mut layer = Conv2d::new(3, 8, 3, 1, 1, false, &mut r);
        assert!(layer
            .train_forward(&Tensor::zeros(&[2, 4, 8, 8]), Mode::Train)
            .is_err());
    }

    #[test]
    fn conv2d_backward_accumulates() {
        let mut r = StdRng::seed_from_u64(1);
        let mut layer = Conv2d::new(1, 2, 3, 1, 1, true, &mut r);
        let x = edde_tensor::rng::rand_uniform(&[1, 1, 5, 5], -1.0, 1.0, &mut r);
        let y = layer.train_forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(y.dims());
        let gx = layer.backward(&g).unwrap();
        assert_eq!(gx.dims(), x.dims());
        assert!(layer.weight.grad.max_abs() > 0.0);
        assert!(layer.bias.grad.max_abs() > 0.0);

        // second pass accumulates onto the first
        let w_grad_1 = layer.weight.grad.clone();
        layer.train_forward(&x, Mode::Train).unwrap();
        layer.backward(&g).unwrap();
        for (a, b) in layer.weight.grad.data().iter().zip(w_grad_1.data().iter()) {
            assert!((a - 2.0 * b).abs() < 1e-4);
        }
    }

    #[test]
    fn conv2d_no_bias_has_single_param() {
        let mut r = StdRng::seed_from_u64(0);
        let mut layer = Conv2d::new(1, 1, 3, 1, 1, false, &mut r);
        let mut names = Vec::new();
        layer.visit_params("c", &mut |n, _| names.push(n.to_string()));
        assert_eq!(names, vec!["c.weight"]);
    }

    #[test]
    fn conv1d_forward_and_backward_shapes() {
        let mut r = StdRng::seed_from_u64(2);
        let mut layer = Conv1d::new(4, 6, 3, 1, 0, &mut r);
        let x = edde_tensor::rng::rand_uniform(&[2, 4, 12], -1.0, 1.0, &mut r);
        let y = layer.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 6, 10]);
        let gx = layer.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gx.dims(), x.dims());
        assert!(layer.weight.grad.max_abs() > 0.0);
    }

    #[test]
    fn conv1d_rejects_rank2() {
        let mut r = StdRng::seed_from_u64(0);
        let mut layer = Conv1d::new(4, 6, 3, 1, 0, &mut r);
        assert!(layer
            .train_forward(&Tensor::zeros(&[4, 12]), Mode::Train)
            .is_err());
    }
}
