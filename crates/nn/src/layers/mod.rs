//! Concrete layers.

pub mod activation;
pub mod batchnorm;
pub mod conv;
pub mod dense;
pub mod dropout;
pub mod embedding;
pub mod pooling;

pub use activation::{Relu, Sigmoid, Tanh};
pub use batchnorm::BatchNorm2d;
pub use conv::{Conv1d, Conv2d};
pub use dense::Dense;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use pooling::{Flatten, GlobalAvgPool, MaxOverTime, MaxPool2d};
