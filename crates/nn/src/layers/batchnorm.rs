//! Batch normalization over the channel axis of `[N, C, H, W]` tensors.

use crate::error::{NnError, Result};
use crate::infer::InferCtx;
use crate::layer::{join_path, Layer};
use crate::param::{Mode, Param};
use edde_tensor::Tensor;

/// Per-channel batch normalization.
///
/// Training mode normalizes with batch statistics and updates the running
/// mean/variance with exponential momentum; evaluation mode normalizes with
/// the running statistics. The running statistics are exposed as *buffers*
/// so knowledge transfer and checkpoints carry them along with the affine
/// parameters.
#[derive(Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    channels: usize,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>, // per channel
    dims: Vec<usize>,
}

impl BatchNorm2d {
    /// A batch-norm layer for `channels` feature maps with the standard
    /// momentum (0.1) and epsilon (1e-5).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            channels,
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize, usize)> {
        if input.rank() != 4 || input.dims()[1] != self.channels {
            return Err(NnError::BadInput {
                layer: "BatchNorm2d",
                expected: format!("[N, {}, H, W]", self.channels),
                got: input.dims().to_vec(),
            });
        }
        let d = input.dims();
        Ok((d[0], d[1], d[2], d[3]))
    }
}

impl Layer for BatchNorm2d {
    fn kind(&self) -> &'static str {
        "batchnorm2d"
    }

    /// Pure path: always normalizes with the frozen running statistics,
    /// regardless of the context mode — updating them would mutate the
    /// model. Arithmetic matches the mutable eval branch exactly.
    #[allow(clippy::needless_range_loop)]
    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        let (n, c, h, w) = self.check_input(input)?;
        let plane = h * w;
        let mut out = ctx.alloc(&[n, c, h, w]);
        for ch in 0..c {
            let mean = self.running_mean.data()[ch];
            let var = self.running_var.data()[ch];
            let inv_std = 1.0 / (var + self.eps).sqrt();
            let g = self.gamma.value.data()[ch];
            let b = self.beta.value.data()[ch];
            for s in 0..n {
                let src = &input.data()[(s * c + ch) * plane..][..plane];
                let dst = &mut out.data_mut()[(s * c + ch) * plane..][..plane];
                for i in 0..plane {
                    let xv = (src[i] - mean) * inv_std;
                    dst[i] = g * xv + b;
                }
            }
        }
        Ok(out)
    }

    #[allow(clippy::needless_range_loop)] // per-channel index loops read clearer here
    fn train_forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (n, c, h, w) = self.check_input(input)?;
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut out = input.clone();
        let mut inv_stds = vec![0.0f32; c];
        let mut x_hat = Tensor::zeros(input.dims());

        for ch in 0..c {
            let (mean, var) = if mode.is_train() {
                // batch statistics over N, H, W
                let mut sum = 0.0f32;
                for s in 0..n {
                    let p = &input.data()[(s * c + ch) * plane..][..plane];
                    sum += p.iter().sum::<f32>();
                }
                let mean = sum / count;
                let mut var_sum = 0.0f32;
                for s in 0..n {
                    let p = &input.data()[(s * c + ch) * plane..][..plane];
                    var_sum += p.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>();
                }
                let var = var_sum / count;
                // update running stats
                let rm = &mut self.running_mean.data_mut()[ch];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                let rv = &mut self.running_var.data_mut()[ch];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean.data()[ch], self.running_var.data()[ch])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ch] = inv_std;
            let g = self.gamma.value.data()[ch];
            let b = self.beta.value.data()[ch];
            for s in 0..n {
                let src = &input.data()[(s * c + ch) * plane..][..plane];
                let xh = &mut x_hat.data_mut()[(s * c + ch) * plane..][..plane];
                let dst = &mut out.data_mut()[(s * c + ch) * plane..][..plane];
                for i in 0..plane {
                    let xv = (src[i] - mean) * inv_std;
                    xh[i] = xv;
                    dst[i] = g * xv + b;
                }
            }
        }
        if mode.is_train() {
            self.cache = Some(BnCache {
                x_hat,
                inv_std: inv_stds,
                dims: input.dims().to_vec(),
            });
        } else {
            self.cache = None;
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .take()
            .ok_or(NnError::MissingForwardCache("BatchNorm2d"))?;
        if grad_out.dims() != cache.dims.as_slice() {
            return Err(NnError::BadInput {
                layer: "BatchNorm2d",
                expected: format!("{:?}", cache.dims),
                got: grad_out.dims().to_vec(),
            });
        }
        let (n, c, h, w) = (cache.dims[0], cache.dims[1], cache.dims[2], cache.dims[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut grad_in = Tensor::zeros(&cache.dims);
        let mut dgamma = Tensor::zeros(&[c]);
        let mut dbeta = Tensor::zeros(&[c]);

        for ch in 0..c {
            // Accumulate per-channel sums over the batch and spatial dims.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for s in 0..n {
                let dy = &grad_out.data()[(s * c + ch) * plane..][..plane];
                let xh = &cache.x_hat.data()[(s * c + ch) * plane..][..plane];
                for i in 0..plane {
                    sum_dy += dy[i];
                    sum_dy_xhat += dy[i] * xh[i];
                }
            }
            dgamma.data_mut()[ch] = sum_dy_xhat;
            dbeta.data_mut()[ch] = sum_dy;
            let g = self.gamma.value.data()[ch];
            let inv_std = cache.inv_std[ch];
            let mean_dy = sum_dy / count;
            let mean_dy_xhat = sum_dy_xhat / count;
            for s in 0..n {
                let dy = &grad_out.data()[(s * c + ch) * plane..][..plane];
                let xh = &cache.x_hat.data()[(s * c + ch) * plane..][..plane];
                let dst = &mut grad_in.data_mut()[(s * c + ch) * plane..][..plane];
                for i in 0..plane {
                    dst[i] = g * inv_std * (dy[i] - mean_dy - xh[i] * mean_dy_xhat);
                }
            }
        }
        self.gamma.accumulate_grad(&dgamma);
        self.beta.accumulate_grad(&dbeta);
        Ok(grad_in)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_path(prefix, "gamma"), &mut self.gamma);
        f(&join_path(prefix, "beta"), &mut self.beta);
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Tensor)) {
        f(&join_path(prefix, "running_mean"), &mut self.running_mean);
        f(&join_path(prefix, "running_var"), &mut self.running_var);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        f(&join_path(prefix, "gamma"), &self.gamma);
        f(&join_path(prefix, "beta"), &self.beta);
    }

    fn visit_buffers_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Tensor)) {
        f(&join_path(prefix, "running_mean"), &self.running_mean);
        f(&join_path(prefix, "running_var"), &self.running_var);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_tensor::rng::rand_uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_output_is_normalized() {
        let mut bn = BatchNorm2d::new(2);
        let mut r = StdRng::seed_from_u64(0);
        let x = rand_uniform(&[4, 2, 3, 3], -5.0, 5.0, &mut r);
        let y = bn.train_forward(&x, Mode::Train).unwrap();
        // per-channel mean ~0, var ~1
        for ch in 0..2 {
            let mut vals = Vec::new();
            for s in 0..4 {
                vals.extend_from_slice(&y.data()[(s * 2 + ch) * 9..][..9]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let mut r = StdRng::seed_from_u64(1);
        // run many training batches so running stats converge
        for _ in 0..200 {
            let x = rand_uniform(&[8, 1, 2, 2], 2.0, 4.0, &mut r); // mean 3
            bn.train_forward(&x, Mode::Train).unwrap();
        }
        let x = Tensor::full(&[1, 1, 2, 2], 3.0);
        let y = bn.train_forward(&x, Mode::Eval).unwrap();
        // input at the running mean should map near beta = 0
        assert!(y.data().iter().all(|&v| v.abs() < 0.2), "{:?}", y.data());

        // the pure path matches the mutable eval path bit for bit
        let mut ctx = InferCtx::new();
        let yp = bn.forward(&x, &mut ctx).unwrap();
        assert_eq!(yp.data(), y.data());
    }

    #[test]
    fn backward_gradient_matches_numerical() {
        let mut r = StdRng::seed_from_u64(3);
        let x = rand_uniform(&[3, 2, 2, 2], -1.0, 1.0, &mut r);
        let g = rand_uniform(&[3, 2, 2, 2], -1.0, 1.0, &mut r);
        let mut bn = BatchNorm2d::new(2);
        bn.gamma.value = Tensor::from_slice(&[1.5, 0.5]);
        bn.beta.value = Tensor::from_slice(&[0.1, -0.2]);

        let mut bn2 = bn.clone();
        bn2.train_forward(&x, Mode::Train).unwrap();
        let gx = bn2.backward(&g).unwrap();

        let loss = |inp: &Tensor| -> f32 {
            let mut b = bn.clone();
            let y = b.train_forward(inp, Mode::Train).unwrap();
            y.data()
                .iter()
                .zip(g.data().iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 5, 13, 23] {
            let mut p = x.clone();
            p.data_mut()[i] += eps;
            let mut m = x.clone();
            m.data_mut()[i] -= eps;
            let num = (loss(&p) - loss(&m)) / (2.0 * eps);
            let ana = gx.data()[i];
            assert!((num - ana).abs() < 2e-2, "x[{i}]: num {num} vs ana {ana}");
        }
    }

    #[test]
    fn gamma_beta_gradients() {
        let mut bn = BatchNorm2d::new(1);
        let mut r = StdRng::seed_from_u64(5);
        let x = rand_uniform(&[2, 1, 2, 2], -1.0, 1.0, &mut r);
        bn.train_forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(&[2, 1, 2, 2]);
        bn.backward(&g).unwrap();
        // dbeta = sum(dy) = 8; dgamma = sum(dy * x_hat) ~ 0 since x_hat sums to 0
        assert!((bn.beta.grad.data()[0] - 8.0).abs() < 1e-4);
        assert!(bn.gamma.grad.data()[0].abs() < 1e-3);
    }

    #[test]
    fn buffers_are_exposed() {
        let mut bn = BatchNorm2d::new(3);
        let mut names = Vec::new();
        bn.visit_buffers("bn", &mut |n, _| names.push(n.to_string()));
        assert_eq!(names, vec!["bn.running_mean", "bn.running_var"]);
    }

    #[test]
    fn eval_backward_errors_without_cache() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        bn.train_forward(&x, Mode::Eval).unwrap();
        assert!(bn.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm2d::new(2);
        assert!(bn
            .train_forward(&Tensor::zeros(&[1, 3, 2, 2]), Mode::Train)
            .is_err());
    }
}
