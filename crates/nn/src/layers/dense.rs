//! Fully-connected (dense) layer.

use crate::error::{NnError, Result};
use crate::infer::InferCtx;
use crate::layer::{join_path, Layer};
use crate::param::{Mode, Param};
use edde_tensor::ops::{
    add_row_broadcast_inplace, matmul, matmul_a_bt, matmul_at_b, matmul_into, sum_axis0,
};
use edde_tensor::{rng, Tensor};
use rand::Rng;

/// `y = x·W + b` with `x: [N, in]`, `W: [in, out]`, `b: [out]`.
#[derive(Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cache_input: Option<Tensor>,
}

impl Dense {
    /// He-normal initialized dense layer, the right default for the ReLU
    /// networks used throughout the paper.
    pub fn new(in_features: usize, out_features: usize, rng_: &mut impl Rng) -> Self {
        let weight = rng::he_normal(&[in_features, out_features], in_features, rng_);
        Dense {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cache_input: None,
        }
    }

    /// Glorot-uniform initialized variant, used by the Text-CNN head.
    pub fn glorot(in_features: usize, out_features: usize, rng_: &mut impl Rng) -> Self {
        let weight = rng::glorot_uniform(
            &[in_features, out_features],
            in_features,
            out_features,
            rng_,
        );
        Dense {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cache_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Dense {
    fn kind(&self) -> &'static str {
        "dense"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::BadInput {
                layer: "Dense",
                expected: format!("[N, {}]", self.in_features),
                got: input.dims().to_vec(),
            });
        }
        let mut y = ctx.alloc(&[input.dims()[0], self.out_features]);
        matmul_into(input, &self.weight.value, &mut y)?;
        add_row_broadcast_inplace(&mut y, &self.bias.value)?;
        Ok(y)
    }

    fn train_forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::BadInput {
                layer: "Dense",
                expected: format!("[N, {}]", self.in_features),
                got: input.dims().to_vec(),
            });
        }
        self.cache_input = Some(input.clone());
        let mut y = matmul(input, &self.weight.value)?;
        add_row_broadcast_inplace(&mut y, &self.bias.value)?;
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache_input
            .take()
            .ok_or(NnError::MissingForwardCache("Dense"))?;
        // dW = xᵀ · dY ; db = column sums of dY ; dx = dY · Wᵀ
        let grad_w = matmul_at_b(&x, grad_out)?;
        self.weight.accumulate_grad(&grad_w);
        let grad_b = sum_axis0(grad_out)?;
        self.bias.accumulate_grad(&grad_b);
        Ok(matmul_a_bt(grad_out, &self.weight.value)?)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_path(prefix, "weight"), &mut self.weight);
        f(&join_path(prefix, "bias"), &mut self.bias);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        f(&join_path(prefix, "weight"), &self.weight);
        f(&join_path(prefix, "bias"), &self.bias);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut r = rng();
        let mut layer = Dense::new(3, 2, &mut r);
        // overwrite with known weights
        layer.weight.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0], &[3, 2]).unwrap();
        layer.bias.value = Tensor::from_slice(&[10.0, 20.0]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y = layer.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[11.0, 22.0]);

        let mut ctx = InferCtx::new();
        let yp = layer.forward(&x, &mut ctx).unwrap();
        assert_eq!(yp.data(), y.data());
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut r = rng();
        let mut layer = Dense::new(3, 2, &mut r);
        assert!(layer
            .train_forward(&Tensor::zeros(&[1, 4]), Mode::Train)
            .is_err());
        assert!(layer
            .train_forward(&Tensor::zeros(&[3]), Mode::Train)
            .is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut r = rng();
        let mut layer = Dense::new(2, 2, &mut r);
        assert!(layer.backward(&Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn gradients_match_numerical() {
        let mut r = rng();
        let mut layer = Dense::new(4, 3, &mut r);
        let x = edde_tensor::rng::rand_uniform(&[5, 4], -1.0, 1.0, &mut r);
        let g = edde_tensor::rng::rand_uniform(&[5, 3], -1.0, 1.0, &mut r);

        let y0 = layer.train_forward(&x, Mode::Train).unwrap();
        let _ = y0;
        let gx = layer.backward(&g).unwrap();

        // loss(x, w) = sum(forward ⊙ g)
        let eps = 1e-2f32;
        let probe = |wi: Option<usize>, xi: Option<usize>| -> f32 {
            let mut l2 = layer.clone();
            let mut x2 = x.clone();
            if let Some(i) = wi {
                l2.weight.value.data_mut()[i] += eps;
            }
            if let Some(i) = xi {
                x2.data_mut()[i] += eps;
            }
            let y = l2.train_forward(&x2, Mode::Train).unwrap();
            y.data()
                .iter()
                .zip(g.data().iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let base_w_plus = probe(Some(0), None);
        let mut l_minus = layer.clone();
        l_minus.weight.value.data_mut()[0] -= eps;
        let y_minus = l_minus.train_forward(&x, Mode::Train).unwrap();
        let base_w_minus: f32 = y_minus
            .data()
            .iter()
            .zip(g.data().iter())
            .map(|(a, b)| a * b)
            .sum();
        let num_w = (base_w_plus - base_w_minus) / (2.0 * eps);
        assert!((num_w - layer.weight.grad.data()[0]).abs() < 1e-2);

        let x_plus = probe(None, Some(0));
        let mut x2 = x.clone();
        x2.data_mut()[0] -= eps;
        let mut l3 = layer.clone();
        let y3 = l3.train_forward(&x2, Mode::Train).unwrap();
        let x_minus: f32 = y3
            .data()
            .iter()
            .zip(g.data().iter())
            .map(|(a, b)| a * b)
            .sum();
        let num_x = (x_plus - x_minus) / (2.0 * eps);
        assert!((num_x - gx.data()[0]).abs() < 1e-2);
    }

    #[test]
    fn param_paths() {
        let mut r = rng();
        let mut layer = Dense::new(2, 2, &mut r);
        let mut names = Vec::new();
        layer.visit_params("fc", &mut |n, _| names.push(n.to_string()));
        assert_eq!(names, vec!["fc.weight", "fc.bias"]);
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut r = rng();
        let mut layer = Dense::new(2, 2, &mut r);
        let x = Tensor::zeros(&[3, 2]);
        layer.train_forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(&[3, 2]);
        layer.backward(&g).unwrap();
        assert_eq!(layer.bias.grad.data(), &[3.0, 3.0]);
    }
}
