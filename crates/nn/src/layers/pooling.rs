//! Pooling and reshaping layers.

use crate::error::{NnError, Result};
use crate::infer::InferCtx;
use crate::layer::Layer;
use crate::param::Mode;
use edde_tensor::ops::{
    global_avg_pool, global_avg_pool_backward, global_avg_pool_into, max_over_time,
    max_over_time_backward, max_over_time_into, max_pool2d, max_pool2d_backward, max_pool2d_into,
    out_dim,
};
use edde_tensor::Tensor;

/// Max pooling with a square window.
#[derive(Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (input dims, argmax)
}

impl MaxPool2d {
    /// Window size `kernel`, stride `stride` (use `kernel == stride` for the
    /// usual non-overlapping pooling).
    pub fn new(kernel: usize, stride: usize) -> Self {
        MaxPool2d {
            kernel,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn kind(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(NnError::BadInput {
                layer: "MaxPool2d",
                expected: "[N, C, H, W]".into(),
                got: input.dims().to_vec(),
            });
        }
        let d = input.dims();
        let oh = out_dim(d[2], self.kernel, self.stride, 0)?;
        let ow = out_dim(d[3], self.kernel, self.stride, 0)?;
        let mut out = ctx.alloc(&[d[0], d[1], oh, ow]);
        max_pool2d_into(input, self.kernel, self.stride, &mut out)?;
        Ok(out)
    }

    fn train_forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let (out, argmax) = max_pool2d(input, self.kernel, self.stride)?;
        self.cache = Some((input.dims().to_vec(), argmax));
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (dims, argmax) = self
            .cache
            .take()
            .ok_or(NnError::MissingForwardCache("MaxPool2d"))?;
        Ok(max_pool2d_backward(&dims, grad_out, &argmax)?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling: `[N,C,H,W] -> [N,C]`, the classification head
/// entry of ResNet and DenseNet.
#[derive(Clone, Default)]
pub struct GlobalAvgPool {
    cache_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// A fresh layer.
    pub fn new() -> Self {
        GlobalAvgPool { cache_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    fn kind(&self) -> &'static str {
        "global_avg_pool"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(NnError::BadInput {
                layer: "GlobalAvgPool",
                expected: "[N, C, H, W]".into(),
                got: input.dims().to_vec(),
            });
        }
        let mut out = ctx.alloc(&[input.dims()[0], input.dims()[1]]);
        global_avg_pool_into(input, &mut out)?;
        Ok(out)
    }

    fn train_forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let out = global_avg_pool(input)?;
        self.cache_dims = Some(input.dims().to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .cache_dims
            .take()
            .ok_or(NnError::MissingForwardCache("GlobalAvgPool"))?;
        Ok(global_avg_pool_backward(&dims, grad_out)?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Max-over-time pooling: `[N,C,L] -> [N,C]`, Text-CNN's sequence reducer.
#[derive(Clone, Default)]
pub struct MaxOverTime {
    cache: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxOverTime {
    /// A fresh layer.
    pub fn new() -> Self {
        MaxOverTime { cache: None }
    }
}

impl Layer for MaxOverTime {
    fn kind(&self) -> &'static str {
        "max_over_time"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        if input.rank() != 3 {
            return Err(NnError::BadInput {
                layer: "MaxOverTime",
                expected: "[N, C, L]".into(),
                got: input.dims().to_vec(),
            });
        }
        let mut out = ctx.alloc(&[input.dims()[0], input.dims()[1]]);
        max_over_time_into(input, &mut out)?;
        Ok(out)
    }

    fn train_forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let (out, argmax) = max_over_time(input)?;
        self.cache = Some((input.dims().to_vec(), argmax));
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (dims, argmax) = self
            .cache
            .take()
            .ok_or(NnError::MissingForwardCache("MaxOverTime"))?;
        Ok(max_over_time_backward(&dims, grad_out, &argmax)?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Flattens `[N, d1, d2, ...]` into `[N, d1*d2*...]`.
#[derive(Clone, Default)]
pub struct Flatten {
    cache_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// A fresh layer.
    pub fn new() -> Self {
        Flatten { cache_dims: None }
    }
}

impl Layer for Flatten {
    fn kind(&self) -> &'static str {
        "flatten"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        if input.rank() < 1 {
            return Err(NnError::BadInput {
                layer: "Flatten",
                expected: "[N, ...]".into(),
                got: input.dims().to_vec(),
            });
        }
        let n = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        let mut out = ctx.alloc(&[n, rest]);
        out.data_mut().copy_from_slice(input.data());
        Ok(out)
    }

    fn train_forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.rank() < 1 {
            return Err(NnError::BadInput {
                layer: "Flatten",
                expected: "[N, ...]".into(),
                got: input.dims().to_vec(),
            });
        }
        self.cache_dims = Some(input.dims().to_vec());
        let n = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        Ok(input.reshape(&[n, rest])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .cache_dims
            .take()
            .ok_or(NnError::MissingForwardCache("Flatten"))?;
        Ok(grad_out.reshape(&dims)?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_layer_round_trip() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = pool.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);

        let mut ctx = InferCtx::new();
        let yp = pool.forward(&x, &mut ctx).unwrap();
        assert_eq!(yp.dims(), y.dims());
        assert_eq!(yp.data(), y.data());
        let gx = pool.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(edde_tensor::ops::sum_all(&gx), 4.0);
    }

    #[test]
    fn global_avg_pool_layer() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = gap.train_forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        assert!(y.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
        let gx = gap.backward(&Tensor::ones(&[2, 3])).unwrap();
        assert!(gx.data().iter().all(|&v| (v - 1.0 / 16.0).abs() < 1e-6));
    }

    #[test]
    fn max_over_time_layer() {
        let mut mot = MaxOverTime::new();
        let x = Tensor::from_vec(vec![1.0, 9.0, 2.0, 0.0, -1.0, -2.0], &[1, 2, 3]).unwrap();
        let y = mot.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[9.0, 0.0]);
        let gx = mot
            .backward(&Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap())
            .unwrap();
        assert_eq!(gx.data(), &[0.0, 1.0, 0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn flatten_round_trip() {
        let mut fl = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4]);
        let y = fl.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let gx = fl.backward(&Tensor::ones(&[2, 12])).unwrap();
        assert_eq!(gx.dims(), &[2, 3, 4]);
    }

    #[test]
    fn backward_requires_forward() {
        assert!(MaxPool2d::new(2, 2).backward(&Tensor::zeros(&[1])).is_err());
        assert!(GlobalAvgPool::new().backward(&Tensor::zeros(&[1])).is_err());
        assert!(MaxOverTime::new().backward(&Tensor::zeros(&[1])).is_err());
        assert!(Flatten::new().backward(&Tensor::zeros(&[1])).is_err());
    }
}
