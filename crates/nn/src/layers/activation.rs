//! Activation layers.

use crate::error::{NnError, Result};
use crate::infer::InferCtx;
use crate::layer::Layer;
use crate::param::Mode;
use edde_tensor::Tensor;

/// Fills `out` with `f(x)` for each input element — the shared shape of the
/// pure activation paths, writing into a context-pooled buffer.
fn map_into(input: &Tensor, ctx: &mut InferCtx, f: impl Fn(f32) -> f32) -> Tensor {
    let mut out = ctx.alloc(input.dims());
    for (o, &v) in out.data_mut().iter_mut().zip(input.data()) {
        *o = f(v);
    }
    out
}

/// Rectified linear unit, `y = max(0, x)`.
#[derive(Clone, Default)]
pub struct Relu {
    /// 1.0 where the input was positive, 0.0 elsewhere.
    mask: Option<Tensor>,
}

impl Relu {
    /// A fresh ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn kind(&self) -> &'static str {
        "relu"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        Ok(map_into(input, ctx, |v| {
            v * (if v > 0.0 { 1.0 } else { 0.0 })
        }))
    }

    fn train_forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let mask = input.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let out = input.zip_map(&mask, |x, m| x * m)?;
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .take()
            .ok_or(NnError::MissingForwardCache("Relu"))?;
        Ok(grad_out.zip_map(&mask, |g, m| g * m)?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Logistic sigmoid, `y = 1/(1 + e^{-x})`.
///
/// Not used by the paper's architectures (which are all ReLU), but provided
/// for downstream users building their own base models.
#[derive(Clone, Default)]
pub struct Sigmoid {
    /// The forward output, cached for `y' = y(1-y)`.
    out: Option<Tensor>,
}

impl Sigmoid {
    /// A fresh sigmoid layer.
    pub fn new() -> Self {
        Sigmoid { out: None }
    }
}

impl Layer for Sigmoid {
    fn kind(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        Ok(map_into(input, ctx, |v| 1.0 / (1.0 + (-v).exp())))
    }

    fn train_forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let out = input.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.out = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let y = self
            .out
            .take()
            .ok_or(NnError::MissingForwardCache("Sigmoid"))?;
        Ok(grad_out.zip_map(&y, |g, yv| g * yv * (1.0 - yv))?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Hyperbolic tangent activation.
#[derive(Clone, Default)]
pub struct Tanh {
    out: Option<Tensor>,
}

impl Tanh {
    /// A fresh tanh layer.
    pub fn new() -> Self {
        Tanh { out: None }
    }
}

impl Layer for Tanh {
    fn kind(&self) -> &'static str {
        "tanh"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        Ok(map_into(input, ctx, f32::tanh))
    }

    fn train_forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let out = input.map(f32::tanh);
        self.out = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let y = self
            .out
            .take()
            .ok_or(NnError::MissingForwardCache("Tanh"))?;
        Ok(grad_out.zip_map(&y, |g, yv| g * (1.0 - yv * yv))?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = relu.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);

        let mut ctx = InferCtx::new();
        let yp = relu.forward(&x, &mut ctx).unwrap();
        assert_eq!(yp.data(), y.data());
    }

    #[test]
    fn backward_gates_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.5, 0.0]);
        relu.train_forward(&x, Mode::Train).unwrap();
        let g = relu
            .backward(&Tensor::from_slice(&[7.0, 7.0, 7.0]))
            .unwrap();
        // zero is treated as inactive (subgradient choice)
        assert_eq!(g.data(), &[0.0, 7.0, 0.0]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros(&[1])).is_err());
    }

    #[test]
    fn sigmoid_forward_and_gradient() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_slice(&[0.0, 100.0, -100.0]);
        let y = s.train_forward(&x, Mode::Train).unwrap();
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        assert!(y.data()[1] > 0.999 && y.data()[2] < 1e-3);
        let g = s.backward(&Tensor::ones(&[3])).unwrap();
        assert!((g.data()[0] - 0.25).abs() < 1e-6); // y(1-y) at 0.5
        assert!(g.data()[1] < 1e-3); // saturated
    }

    #[test]
    fn tanh_forward_and_gradient() {
        let mut t = Tanh::new();
        let x = Tensor::from_slice(&[0.0, 1.0]);
        let y = t.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - 1.0f32.tanh()).abs() < 1e-6);
        let g = t.backward(&Tensor::ones(&[2])).unwrap();
        assert!((g.data()[0] - 1.0).abs() < 1e-6); // 1 - tanh^2(0)
    }

    #[test]
    fn sigmoid_tanh_gradient_matches_numerical() {
        for which in ["sigmoid", "tanh"] {
            let x = Tensor::from_slice(&[0.3, -0.7, 1.2]);
            let gout = Tensor::from_slice(&[1.0, -0.5, 2.0]);
            let (y_fn, mut fwd): (fn(f32) -> f32, Box<dyn Layer>) = match which {
                "sigmoid" => (
                    (|v: f32| 1.0 / (1.0 + (-v).exp())) as fn(f32) -> f32,
                    Box::new(Sigmoid::new()),
                ),
                _ => (f32::tanh as fn(f32) -> f32, Box::new(Tanh::new())),
            };
            fwd.train_forward(&x, Mode::Train).unwrap();
            let ana = fwd.backward(&gout).unwrap();
            let eps = 1e-3f32;
            for i in 0..3 {
                let mut p = x.clone();
                p.data_mut()[i] += eps;
                let mut m = x.clone();
                m.data_mut()[i] -= eps;
                let lp: f32 = p
                    .data()
                    .iter()
                    .zip(gout.data())
                    .map(|(&v, &g)| y_fn(v) * g)
                    .sum();
                let lm: f32 = m
                    .data()
                    .iter()
                    .zip(gout.data())
                    .map(|(&v, &g)| y_fn(v) * g)
                    .sum();
                let num = (lp - lm) / (2.0 * eps);
                assert!((num - ana.data()[i]).abs() < 1e-3, "{which}[{i}]");
            }
        }
    }
    #[test]
    fn has_no_params() {
        let mut relu = Relu::new();
        let mut count = 0;
        relu.visit_params("", &mut |_, _| count += 1);
        assert_eq!(count, 0);
    }
}
