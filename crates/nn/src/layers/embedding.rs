//! Token embedding layer for the Text-CNN.

use crate::error::{NnError, Result};
use crate::infer::InferCtx;
use crate::layer::{join_path, Layer};
use crate::param::{Mode, Param};
use edde_tensor::{rng, Tensor};
use rand::Rng;

/// Maps integer token ids to dense vectors.
///
/// Input is a `[N, L]` tensor whose entries are token ids stored as `f32`
/// (the whole stack is `f32`; ids are exact integers well below the 2^24
/// f32-precision limit). Output is `[N, D, L]` — channels-first so it feeds
/// [`crate::layers::Conv1d`] directly, matching the Text-CNN pipeline.
#[derive(Clone)]
pub struct Embedding {
    table: Param,
    vocab: usize,
    dim: usize,
    cache_ids: Option<Vec<usize>>, // flattened [N*L]
    cache_shape: Option<(usize, usize)>,
}

impl Embedding {
    /// Glorot-uniform initialized embedding table `[vocab, dim]`.
    pub fn new(vocab: usize, dim: usize, rng_: &mut impl Rng) -> Self {
        let table = rng::glorot_uniform(&[vocab, dim], vocab, dim, rng_);
        Embedding {
            table: Param::new(table),
            vocab,
            dim,
            cache_ids: None,
            cache_shape: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Layer for Embedding {
    fn kind(&self) -> &'static str {
        "embedding"
    }

    #[allow(clippy::needless_range_loop)]
    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        if input.rank() != 2 {
            return Err(NnError::BadInput {
                layer: "Embedding",
                expected: "[N, L] of token ids".into(),
                got: input.dims().to_vec(),
            });
        }
        let (n, l) = (input.dims()[0], input.dims()[1]);
        let mut out = ctx.alloc(&[n, self.dim, l]);
        for s in 0..n {
            for t in 0..l {
                let v = input.data()[s * l + t];
                let id = v as usize;
                if v < 0.0 || id >= self.vocab || v.fract() != 0.0 {
                    let got = input.dims().to_vec();
                    ctx.recycle(out);
                    return Err(NnError::BadInput {
                        layer: "Embedding",
                        expected: format!("integer ids in [0, {})", self.vocab),
                        got,
                    });
                }
                let row = &self.table.value.data()[id * self.dim..][..self.dim];
                for d in 0..self.dim {
                    out.data_mut()[(s * self.dim + d) * l + t] = row[d];
                }
            }
        }
        Ok(out)
    }

    #[allow(clippy::needless_range_loop)] // (sample, time, dim) index loops read clearer
    fn train_forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.rank() != 2 {
            return Err(NnError::BadInput {
                layer: "Embedding",
                expected: "[N, L] of token ids".into(),
                got: input.dims().to_vec(),
            });
        }
        let (n, l) = (input.dims()[0], input.dims()[1]);
        let mut ids = Vec::with_capacity(n * l);
        for &v in input.data() {
            let id = v as usize;
            if v < 0.0 || id >= self.vocab || v.fract() != 0.0 {
                return Err(NnError::BadInput {
                    layer: "Embedding",
                    expected: format!("integer ids in [0, {})", self.vocab),
                    got: input.dims().to_vec(),
                });
            }
            ids.push(id);
        }
        // out[n, d, l] = table[ids[n*L + l], d]
        let mut out = Tensor::zeros(&[n, self.dim, l]);
        for s in 0..n {
            for t in 0..l {
                let row = &self.table.value.data()[ids[s * l + t] * self.dim..][..self.dim];
                for d in 0..self.dim {
                    out.data_mut()[(s * self.dim + d) * l + t] = row[d];
                }
            }
        }
        self.cache_ids = Some(ids);
        self.cache_shape = Some((n, l));
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let ids = self
            .cache_ids
            .take()
            .ok_or(NnError::MissingForwardCache("Embedding"))?;
        let (n, l) = self
            .cache_shape
            .take()
            .ok_or(NnError::MissingForwardCache("Embedding"))?;
        if grad_out.dims() != [n, self.dim, l] {
            return Err(NnError::BadInput {
                layer: "Embedding",
                expected: format!("[{n}, {}, {l}]", self.dim),
                got: grad_out.dims().to_vec(),
            });
        }
        let mut dtable = Tensor::zeros(&[self.vocab, self.dim]);
        for s in 0..n {
            for t in 0..l {
                let id = ids[s * l + t];
                for d in 0..self.dim {
                    dtable.data_mut()[id * self.dim + d] +=
                        grad_out.data()[(s * self.dim + d) * l + t];
                }
            }
        }
        self.table.accumulate_grad(&dtable);
        // Token ids are not differentiable; return a zero gradient so the
        // chain terminates cleanly at the input.
        Ok(Tensor::zeros(&[n, l]))
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_path(prefix, "table"), &mut self.table);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        f(&join_path(prefix, "table"), &self.table);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_produces_channels_first() {
        let mut r = StdRng::seed_from_u64(0);
        let mut emb = Embedding::new(5, 3, &mut r);
        // deterministic table: row i = [i, i+0.5, i+0.25]
        for i in 0..5 {
            for (d, off) in [0.0, 0.5, 0.25].iter().enumerate() {
                emb.table.value.data_mut()[i * 3 + d] = i as f32 + off;
            }
        }
        let ids = Tensor::from_vec(vec![2.0, 4.0], &[1, 2]).unwrap();
        let y = emb.train_forward(&ids, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 3, 2]);
        // channel 0 over time: [2, 4]; channel 1: [2.5, 4.5]
        assert_eq!(y.data(), &[2.0, 4.0, 2.5, 4.5, 2.25, 4.25]);

        let mut ctx = InferCtx::new();
        let yp = emb.forward(&ids, &mut ctx).unwrap();
        assert_eq!(yp.data(), y.data());
    }

    #[test]
    fn rejects_out_of_vocab_and_fractional_ids() {
        let mut r = StdRng::seed_from_u64(0);
        let mut emb = Embedding::new(5, 3, &mut r);
        let bad = Tensor::from_vec(vec![5.0], &[1, 1]).unwrap();
        assert!(emb.train_forward(&bad, Mode::Train).is_err());
        let frac = Tensor::from_vec(vec![1.5], &[1, 1]).unwrap();
        assert!(emb.train_forward(&frac, Mode::Train).is_err());
        let neg = Tensor::from_vec(vec![-1.0], &[1, 1]).unwrap();
        assert!(emb.train_forward(&neg, Mode::Train).is_err());

        let mut ctx = InferCtx::new();
        assert!(emb.forward(&bad, &mut ctx).is_err());
        assert!(emb.forward(&frac, &mut ctx).is_err());
        assert!(emb.forward(&neg, &mut ctx).is_err());
    }

    #[test]
    fn backward_scatter_adds_to_used_rows() {
        let mut r = StdRng::seed_from_u64(0);
        let mut emb = Embedding::new(4, 2, &mut r);
        let ids = Tensor::from_vec(vec![1.0, 1.0, 3.0], &[1, 3]).unwrap();
        emb.train_forward(&ids, Mode::Train).unwrap();
        let g = Tensor::ones(&[1, 2, 3]);
        let gin = emb.backward(&g).unwrap();
        assert_eq!(gin.dims(), &[1, 3]);
        assert!(gin.data().iter().all(|&v| v == 0.0));
        // row 1 used twice, row 3 once, rows 0/2 untouched
        let grad = emb.table.grad.data();
        assert_eq!(&grad[2..4], &[2.0, 2.0]);
        assert_eq!(&grad[6..8], &[1.0, 1.0]);
        assert_eq!(&grad[0..2], &[0.0, 0.0]);
        assert_eq!(&grad[4..6], &[0.0, 0.0]);
    }
}
