//! # edde-nn
//!
//! A from-scratch neural-network framework sufficient to reproduce the EDDE
//! paper (ICDE 2020): layer-based models with explicit backward passes,
//! SGD with momentum and weight decay, the learning-rate schedules the paper
//! uses (step decay and cosine annealing with warm restarts), and preset
//! architectures (MLP, ResNet, DenseNet, Text-CNN).
//!
//! The design favours explicitness over magic: a [`layer::Layer`] caches its
//! own forward state and implements `backward` directly, and a
//! [`network::Network`] is a named tree of layers whose parameters can be
//! exported, imported, and *partially transferred* — the operation EDDE's
//! β-knowledge-transfer builds on.
//!
//! The forward path is split in two: `train_forward(&mut self, ..)` caches
//! backward state for training, while the pure `forward(&self, .., &mut
//! InferCtx)` is immutable and allocation-free in steady state — the path
//! frozen ensemble serving uses.
//!
//! ```
//! use edde_nn::infer::InferCtx;
//! use edde_nn::models::mlp;
//! use edde_nn::network::Network;
//! use edde_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let net: Network = mlp(&[4, 16, 3], 0.0, &mut rng);
//! let x = Tensor::zeros(&[2, 4]);
//! let mut ctx = InferCtx::new();
//! let logits = net.forward(&x, &mut ctx).unwrap();
//! assert_eq!(logits.dims(), &[2, 3]);
//! ```

pub mod blocks;
pub mod checkpoint;
pub mod chunkstore;
pub mod error;
pub mod infer;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod network;
pub mod optim;
pub mod param;

pub use error::{NnError, Result};
pub use infer::{with_thread_ctx, DropoutStream, InferCtx};
pub use layer::{Layer, Sequential};
pub use network::Network;
pub use param::{Mode, Param};
