//! Saving and restoring network state, with integrity checking and atomic
//! writes.
//!
//! Two on-disk layouts exist:
//!
//! * **v1 (legacy)** — the raw [`edde_tensor::serialize::encode_params`]
//!   stream (param count, then named `EDT1` tensors). No framing, no
//!   checksum. Still readable.
//! * **v2 (`EDC2`)** — the same payload wrapped in a checksummed frame:
//!
//!   ```text
//!   magic   : b"EDC2"
//!   version : u32 LE (currently 2)
//!   crc32   : u32 LE over the payload bytes
//!   length  : u64 LE payload byte count
//!   payload : the v1 parameter stream
//!   ```
//!
//! [`save`] always writes v2 and is atomic: bytes go to a sibling
//! `*.tmp` file which is fsynced and then renamed over the destination, so
//! a crash mid-write can never leave a half-written checkpoint under the
//! real name. [`load`] auto-detects the version, verifying the checksum for
//! v2 frames.
//!
//! The [`CheckpointStore`] trait abstracts the byte transport so ensemble
//! run state (see `edde-core`) can target the filesystem, memory (tests),
//! or a fault-injecting wrapper without touching training code.

use crate::error::{NnError, Result};
use crate::network::Network;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use edde_tensor::crc32::crc32;
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic prefix of a v2 checkpoint frame.
pub const V2_MAGIC: &[u8; 4] = b"EDC2";

/// Current checkpoint format version.
pub const V2_VERSION: u32 = 2;

/// Byte size of the v2 frame header (magic + version + crc + length).
const V2_HEADER: usize = 4 + 4 + 4 + 8;

/// Serializes a network's state into raw (unframed, v1) payload bytes.
pub fn to_bytes(net: &Network) -> Bytes {
    edde_tensor::serialize::encode_params(&net.export_state())
}

/// Restores a network's state from payload bytes — either a raw v1 stream
/// or a sealed v2 frame (auto-detected).
pub fn from_bytes(net: &mut Network, bytes: Bytes) -> Result<()> {
    let payload = if bytes.len() >= 4 && &bytes[..4] == V2_MAGIC {
        unseal(bytes)?
    } else {
        bytes
    };
    let state = edde_tensor::serialize::decode_params(payload).map_err(NnError::Tensor)?;
    net.import_state(&state)
}

/// Wraps payload bytes in a checksummed v2 frame.
pub fn seal(payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(V2_HEADER + payload.len());
    buf.put_slice(V2_MAGIC);
    buf.put_u32_le(V2_VERSION);
    buf.put_u32_le(crc32(payload));
    buf.put_u64_le(payload.len() as u64);
    buf.put_slice(payload);
    buf.freeze()
}

/// Why an `EDC2` frame was rejected by [`unseal_checked`]. Truncation and
/// corruption are distinct variants so chunked-storage readers
/// (`crate::chunkstore`) can report a torn chunk differently from a
/// bit-flipped one; [`unseal`] flattens every variant into
/// [`NnError::Corrupt`] with the same message it has always produced.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// The value is shorter than the fixed frame header.
    TooShort {
        /// Bytes actually present.
        got: usize,
    },
    /// The frame does not start with the `EDC2` magic.
    BadMagic([u8; 4]),
    /// The frame magic is right but the version is not understood.
    UnsupportedVersion(u32),
    /// The header's payload length disagrees with the bytes present —
    /// a torn (truncated or padded) write.
    LengthMismatch {
        /// Payload length the header states.
        stated: u64,
        /// Payload bytes actually present.
        got: u64,
    },
    /// The payload CRC does not match the header — a bit flip.
    ChecksumMismatch {
        /// CRC the header carries.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
}

impl FrameError {
    /// True for the variants a torn (incomplete) write produces, as
    /// opposed to in-place corruption of a complete frame.
    pub fn is_truncation(&self) -> bool {
        matches!(
            self,
            FrameError::TooShort { .. } | FrameError::LengthMismatch { .. }
        )
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort { got } => write!(f, "frame too short: {got} bytes"),
            FrameError::BadMagic(magic) => {
                write!(f, "bad magic {magic:?}, expected {V2_MAGIC:?}")
            }
            FrameError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            FrameError::LengthMismatch { stated, got } => {
                write!(
                    f,
                    "frame length {stated} does not match remaining {got} bytes"
                )
            }
            FrameError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// [`unseal`] with the rejection reason kept as a typed [`FrameError`]
/// instead of a formatted message.
pub fn unseal_checked(mut bytes: Bytes) -> std::result::Result<Bytes, FrameError> {
    if bytes.remaining() < V2_HEADER {
        return Err(FrameError::TooShort {
            got: bytes.remaining(),
        });
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != V2_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = bytes.get_u32_le();
    if version != V2_VERSION {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let expect_crc = bytes.get_u32_le();
    let len = bytes.get_u64_le();
    if len != bytes.remaining() as u64 {
        return Err(FrameError::LengthMismatch {
            stated: len,
            got: bytes.remaining() as u64,
        });
    }
    let actual = crc32(&bytes);
    if actual != expect_crc {
        return Err(FrameError::ChecksumMismatch {
            stored: expect_crc,
            computed: actual,
        });
    }
    Ok(bytes)
}

/// Unwraps a v2 frame, verifying length and checksum. Returns the payload.
pub fn unseal(bytes: Bytes) -> Result<Bytes> {
    unseal_checked(bytes).map_err(|e| NnError::Corrupt(e.to_string()))
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, then rename over the destination.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    atomic_write_impl(path, bytes, true)
}

/// [`atomic_write`] without the fsync: atomic against concurrent readers,
/// but a crash may lose (or tear, detectably — payloads are checksummed)
/// the last write. Backs [`CheckpointStore::put_relaxed`].
pub fn atomic_write_nosync(path: &Path, bytes: &[u8]) -> Result<()> {
    atomic_write_impl(path, bytes, false)
}

fn atomic_write_impl(path: &Path, bytes: &[u8], sync: bool) -> Result<()> {
    let io = |what: &'static str| {
        let p = path.display().to_string();
        move |e: std::io::Error| NnError::Io(format!("{what} {p}: {e}"))
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp).map_err(io("cannot create"))?;
        f.write_all(bytes).map_err(io("cannot write"))?;
        if sync {
            f.sync_all().map_err(io("cannot sync"))?;
        }
    }
    fs::rename(&tmp, path).map_err(|e| {
        // Don't leave the temp file behind on a failed rename.
        let _ = fs::remove_file(&tmp);
        NnError::Io(format!(
            "cannot rename {} over {}: {e}",
            tmp.display(),
            path.display()
        ))
    })
}

/// Writes a checkpoint file in the v2 (checksummed) format, atomically.
pub fn save(net: &Network, path: impl AsRef<Path>) -> Result<()> {
    let sealed = seal(&to_bytes(net));
    atomic_write(path.as_ref(), &sealed)
}

/// Loads a checkpoint file (v1 or v2, auto-detected) into an
/// architecture-compatible network.
pub fn load(net: &mut Network, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let bytes = fs::read(path)
        .map_err(|e| NnError::Io(format!("cannot read checkpoint {}: {e}", path.display())))?;
    from_bytes(net, Bytes::from(bytes))
}

/// A keyed byte store for checkpoints and run manifests.
///
/// Implementations must make `put` all-or-nothing per key: a reader must
/// never observe a torn value. The filesystem implementation gets this from
/// write-temp-then-rename; the in-memory one from a mutex.
pub trait CheckpointStore: Send + Sync {
    /// Stores `bytes` under `key`, replacing any previous value.
    fn put(&self, key: &str, bytes: &[u8]) -> Result<()>;
    /// Stores `bytes` under `key` with *relaxed durability*: the write must
    /// still be all-or-nothing against concurrent readers, but it may skip
    /// the flush to stable storage that [`CheckpointStore::put`] implies.
    /// For advisory state that is cheap to recompute (e.g. epoch-boundary
    /// progress records, rewritten every epoch), trading a crash losing the
    /// last write for not paying an fsync per epoch is the right default.
    /// Implementations where the distinction has no meaning inherit `put`.
    fn put_relaxed(&self, key: &str, bytes: &[u8]) -> Result<()> {
        self.put(key, bytes)
    }
    /// Retrieves the value stored under `key`.
    fn get(&self, key: &str) -> Result<Bytes>;
    /// Retrieves `len` bytes of the value under `key`, starting at byte
    /// `offset`. A range extending past the end of the value is an error
    /// (`NnError::Io`), never a short read — callers use this to peek
    /// fixed-size headers and individual chunks, where a short result
    /// would silently masquerade as truncation of the value itself.
    ///
    /// The default implementation fetches the whole value and slices it;
    /// backends with random access ([`FsStore`]) override it to read only
    /// the requested window.
    fn get_range(&self, key: &str, offset: usize, len: usize) -> Result<Bytes> {
        let bytes = self.get(key)?;
        let end = offset
            .checked_add(len)
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| {
                NnError::Io(format!(
                    "range {offset}+{len} out of bounds for {key:?} ({} bytes)",
                    bytes.len()
                ))
            })?;
        Ok(bytes.slice(offset..end))
    }
    /// Whether `key` currently has a value.
    fn contains(&self, key: &str) -> bool;
    /// Removes `key` if present (no error when absent).
    fn remove(&self, key: &str) -> Result<()>;
    /// Every key currently stored, in unspecified order. Used by manifest
    /// garbage collection to find orphaned entries.
    fn keys(&self) -> Result<Vec<String>>;
}

/// Filesystem-backed store: each key is a file inside one directory,
/// written atomically.
#[derive(Debug, Clone)]
pub struct FsStore {
    dir: PathBuf,
}

impl FsStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| NnError::Io(format!("cannot create store dir {}: {e}", dir.display())))?;
        Ok(FsStore { dir })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> Result<PathBuf> {
        // Keys are single path components by contract; reject separators so
        // a hostile manifest can't escape the store directory.
        if key.is_empty() || key.contains(['/', '\\']) || key == "." || key == ".." {
            return Err(NnError::Io(format!("invalid store key {key:?}")));
        }
        Ok(self.dir.join(key))
    }
}

impl CheckpointStore for FsStore {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        atomic_write(&self.path_for(key)?, bytes)
    }

    fn put_relaxed(&self, key: &str, bytes: &[u8]) -> Result<()> {
        atomic_write_nosync(&self.path_for(key)?, bytes)
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let path = self.path_for(key)?;
        let bytes = fs::read(&path)
            .map_err(|e| NnError::Io(format!("cannot read {}: {e}", path.display())))?;
        Ok(Bytes::from(bytes))
    }

    fn get_range(&self, key: &str, offset: usize, len: usize) -> Result<Bytes> {
        use std::io::{Read, Seek, SeekFrom};
        let path = self.path_for(key)?;
        let io = |e: std::io::Error| {
            NnError::Io(format!(
                "cannot read range {offset}+{len} of {}: {e}",
                path.display()
            ))
        };
        let mut f = fs::File::open(&path).map_err(io)?;
        f.seek(SeekFrom::Start(offset as u64)).map_err(io)?;
        let mut out = vec![0u8; len];
        f.read_exact(&mut out).map_err(io)?;
        Ok(Bytes::from(out))
    }

    fn contains(&self, key: &str) -> bool {
        self.path_for(key).map(|p| p.is_file()).unwrap_or(false)
    }

    fn remove(&self, key: &str) -> Result<()> {
        let path = self.path_for(key)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(NnError::Io(format!(
                "cannot remove {}: {e}",
                path.display()
            ))),
        }
    }

    fn keys(&self) -> Result<Vec<String>> {
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| NnError::Io(format!("cannot list {}: {e}", self.dir.display())))?;
        let mut keys = Vec::new();
        for entry in entries {
            let entry = entry
                .map_err(|e| NnError::Io(format!("cannot list {}: {e}", self.dir.display())))?;
            if entry.path().is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    // Skip in-flight temp files from `atomic_write`.
                    if !name.ends_with(".tmp") {
                        keys.push(name);
                    }
                }
            }
        }
        Ok(keys)
    }
}

/// In-memory store for tests and ephemeral runs.
#[derive(Debug, Default)]
pub struct MemStore {
    map: Mutex<HashMap<String, Bytes>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl CheckpointStore for MemStore {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key.to_string(), Bytes::from(bytes.to_vec()));
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
            .ok_or_else(|| NnError::Io(format!("no such key {key:?}")))
    }

    fn contains(&self, key: &str) -> bool {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(key)
    }

    fn remove(&self, key: &str) -> Result<()> {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key);
        Ok(())
    }

    fn keys(&self) -> Result<Vec<String>> {
        Ok(self
            .map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect())
    }
}

/// Saves a network into a store under `key`, sealed in a v2 frame.
pub fn save_to_store(store: &dyn CheckpointStore, key: &str, net: &Network) -> Result<()> {
    store.put(key, &seal(&to_bytes(net)))
}

/// Loads a network from a store, verifying the v2 frame.
pub fn load_from_store(store: &dyn CheckpointStore, key: &str, net: &mut Network) -> Result<()> {
    from_bytes(net, store.get(key)?)
}

/// Writes an arbitrary payload (e.g. an optimizer or progress blob) into a
/// store under `key`, sealed in a checksummed v2 frame.
pub fn put_sealed(store: &dyn CheckpointStore, key: &str, payload: &[u8]) -> Result<()> {
    store.put(key, &seal(payload))
}

/// [`put_sealed`] through [`CheckpointStore::put_relaxed`]: the checksummed
/// frame still detects a torn write, but the store may skip flushing to
/// stable storage. For advisory, frequently rewritten records.
pub fn put_sealed_relaxed(store: &dyn CheckpointStore, key: &str, payload: &[u8]) -> Result<()> {
    store.put_relaxed(key, &seal(payload))
}

/// Reads and unseals a payload written by [`put_sealed`], verifying the
/// frame checksum.
pub fn get_sealed(store: &dyn CheckpointStore, key: &str) -> Result<Bytes> {
    unseal(store.get(key)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp;
    use crate::param::Mode;
    use edde_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("edde_ckpt_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn byte_round_trip_preserves_outputs() {
        let mut r = StdRng::seed_from_u64(11);
        let mut a = mlp(&[3, 5, 2], 0.0, &mut r);
        let mut b = mlp(&[3, 5, 2], 0.0, &mut r); // different init
        let x = Tensor::ones(&[2, 3]);
        let ya = a.train_forward(&x, Mode::Eval).unwrap();

        let bytes = to_bytes(&a);
        from_bytes(&mut b, bytes).unwrap();
        let yb = b.train_forward(&x, Mode::Eval).unwrap();
        assert_eq!(ya.data(), yb.data());
    }

    #[test]
    fn file_round_trip() {
        let dir = temp_dir("file_rt");
        let path = dir.join("net.edt");
        let mut r = StdRng::seed_from_u64(12);
        let mut a = mlp(&[2, 4, 2], 0.0, &mut r);
        save(&a, &path).unwrap();
        let mut b = mlp(&[2, 4, 2], 0.0, &mut r);
        load(&mut b, &path).unwrap();
        let x = Tensor::ones(&[1, 2]);
        assert_eq!(
            a.train_forward(&x, Mode::Eval).unwrap().data(),
            b.train_forward(&x, Mode::Eval).unwrap().data()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_leaves_no_temp_file_and_writes_v2() {
        let dir = temp_dir("no_tmp");
        let path = dir.join("net.edt");
        let mut r = StdRng::seed_from_u64(15);
        let a = mlp(&[2, 4, 2], 0.0, &mut r);
        save(&a, &path).unwrap();
        let entries: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(
            entries,
            vec!["net.edt".to_string()],
            "stray files: {entries:?}"
        );
        let bytes = fs::read(&path).unwrap();
        assert_eq!(&bytes[..4], V2_MAGIC);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_v1_checkpoints_still_load() {
        let dir = temp_dir("legacy_v1");
        let path = dir.join("net_v1.edt");
        let mut r = StdRng::seed_from_u64(16);
        let mut a = mlp(&[2, 4, 2], 0.0, &mut r);
        // A v1 file is the raw parameter stream, written without framing —
        // exactly what the pre-v2 `save` produced.
        fs::write(&path, to_bytes(&a)).unwrap();
        let mut b = mlp(&[2, 4, 2], 0.0, &mut r);
        load(&mut b, &path).unwrap();
        let x = Tensor::ones(&[1, 2]);
        assert_eq!(
            a.train_forward(&x, Mode::Eval).unwrap().data(),
            b.train_forward(&x, Mode::Eval).unwrap().data()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_detected_by_checksum() {
        let mut r = StdRng::seed_from_u64(17);
        let a = mlp(&[2, 4, 2], 0.0, &mut r);
        let sealed = seal(&to_bytes(&a));
        // flip one bit somewhere in the payload
        let mut corrupt = sealed.to_vec();
        let idx = V2_HEADER + corrupt[V2_HEADER..].len() / 2;
        corrupt[idx] ^= 0x04;
        let mut b = mlp(&[2, 4, 2], 0.0, &mut r);
        let err = from_bytes(&mut b, Bytes::from(corrupt)).unwrap_err();
        assert!(matches!(err, NnError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn truncated_v2_frame_is_detected() {
        let mut r = StdRng::seed_from_u64(18);
        let a = mlp(&[2, 4, 2], 0.0, &mut r);
        let sealed = seal(&to_bytes(&a));
        let cut = sealed.slice(0..sealed.len() - 7);
        let mut b = mlp(&[2, 4, 2], 0.0, &mut r);
        let err = from_bytes(&mut b, cut).unwrap_err();
        assert!(matches!(err, NnError::Corrupt(_)), "{err}");
    }

    #[test]
    fn load_into_wrong_architecture_fails() {
        let mut r = StdRng::seed_from_u64(13);
        let a = mlp(&[2, 4, 2], 0.0, &mut r);
        let bytes = to_bytes(&a);
        let mut wrong = mlp(&[2, 8, 2], 0.0, &mut r);
        assert!(from_bytes(&mut wrong, bytes).is_err());
    }

    #[test]
    fn missing_file_is_a_clean_io_error() {
        let mut r = StdRng::seed_from_u64(14);
        let mut a = mlp(&[2, 2], 0.0, &mut r);
        let err = load(&mut a, "/nonexistent/path/net.edt").unwrap_err();
        assert!(matches!(err, NnError::Io(_)), "{err}");
    }

    #[test]
    fn unwritable_path_is_an_io_error_not_state_mismatch() {
        let mut r = StdRng::seed_from_u64(19);
        let a = mlp(&[2, 2], 0.0, &mut r);
        let err = save(&a, "/nonexistent-dir/net.edt").unwrap_err();
        assert!(matches!(err, NnError::Io(_)), "{err}");
    }

    #[test]
    fn stores_round_trip_and_report_missing_keys() {
        for store in [
            Box::new(MemStore::new()) as Box<dyn CheckpointStore>,
            Box::new(FsStore::open(temp_dir("store_rt")).unwrap()),
        ] {
            let mut r = StdRng::seed_from_u64(20);
            let mut a = mlp(&[2, 4, 2], 0.0, &mut r);
            assert!(!store.contains("m0"));
            assert!(store.get("m0").is_err());
            save_to_store(store.as_ref(), "m0", &a).unwrap();
            assert!(store.contains("m0"));
            let mut b = mlp(&[2, 4, 2], 0.0, &mut r);
            load_from_store(store.as_ref(), "m0", &mut b).unwrap();
            let x = Tensor::ones(&[1, 2]);
            assert_eq!(
                a.train_forward(&x, Mode::Eval).unwrap().data(),
                b.train_forward(&x, Mode::Eval).unwrap().data()
            );
            store.remove("m0").unwrap();
            assert!(!store.contains("m0"));
            store.remove("m0").unwrap(); // idempotent
        }
    }

    #[test]
    fn stores_enumerate_their_keys() {
        for store in [
            Box::new(MemStore::new()) as Box<dyn CheckpointStore>,
            Box::new(FsStore::open(temp_dir("store_keys")).unwrap()),
        ] {
            assert!(store.keys().unwrap().is_empty());
            store.put("manifest", b"m").unwrap();
            store.put("member-0", b"a").unwrap();
            store.put("member-1", b"b").unwrap();
            store.remove("member-0").unwrap();
            let mut keys = store.keys().unwrap();
            keys.sort();
            assert_eq!(keys, ["manifest", "member-1"]);
        }
    }

    #[test]
    fn fs_store_rejects_path_traversal_keys() {
        let store = FsStore::open(temp_dir("traversal")).unwrap();
        assert!(store.put("../escape", b"x").is_err());
        assert!(store.put("a/b", b"x").is_err());
        assert!(store.put("", b"x").is_err());
    }
}
