//! Saving and restoring network state to disk.
//!
//! Uses the compact binary format of [`edde_tensor::serialize`]; a
//! checkpoint is the network's full `export_state` (parameters followed by
//! batch-norm buffers).

use crate::error::{NnError, Result};
use crate::network::Network;
use bytes::Bytes;
use std::fs;
use std::path::Path;

/// Serializes a network's state into bytes.
pub fn to_bytes(net: &mut Network) -> Bytes {
    edde_tensor::serialize::encode_params(&net.export_state())
}

/// Restores a network's state from bytes produced by [`to_bytes`].
pub fn from_bytes(net: &mut Network, bytes: Bytes) -> Result<()> {
    let state = edde_tensor::serialize::decode_params(bytes)
        .map_err(NnError::Tensor)?;
    net.import_state(&state)
}

/// Writes a checkpoint file.
pub fn save(net: &mut Network, path: impl AsRef<Path>) -> Result<()> {
    let bytes = to_bytes(net);
    fs::write(path.as_ref(), &bytes).map_err(|e| {
        NnError::StateMismatch(format!("cannot write checkpoint: {e}"))
    })
}

/// Loads a checkpoint file into an architecture-compatible network.
pub fn load(net: &mut Network, path: impl AsRef<Path>) -> Result<()> {
    let bytes = fs::read(path.as_ref()).map_err(|e| {
        NnError::StateMismatch(format!("cannot read checkpoint: {e}"))
    })?;
    from_bytes(net, Bytes::from(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp;
    use crate::param::Mode;
    use edde_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn byte_round_trip_preserves_outputs() {
        let mut r = StdRng::seed_from_u64(11);
        let mut a = mlp(&[3, 5, 2], 0.0, &mut r);
        let mut b = mlp(&[3, 5, 2], 0.0, &mut r); // different init
        let x = Tensor::ones(&[2, 3]);
        let ya = a.forward(&x, Mode::Eval).unwrap();

        let bytes = to_bytes(&mut a);
        from_bytes(&mut b, bytes).unwrap();
        let yb = b.forward(&x, Mode::Eval).unwrap();
        assert_eq!(ya.data(), yb.data());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("edde_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.edt");
        let mut r = StdRng::seed_from_u64(12);
        let mut a = mlp(&[2, 4, 2], 0.0, &mut r);
        save(&mut a, &path).unwrap();
        let mut b = mlp(&[2, 4, 2], 0.0, &mut r);
        load(&mut b, &path).unwrap();
        let x = Tensor::ones(&[1, 2]);
        assert_eq!(
            a.forward(&x, Mode::Eval).unwrap().data(),
            b.forward(&x, Mode::Eval).unwrap().data()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_into_wrong_architecture_fails() {
        let mut r = StdRng::seed_from_u64(13);
        let mut a = mlp(&[2, 4, 2], 0.0, &mut r);
        let bytes = to_bytes(&mut a);
        let mut wrong = mlp(&[2, 8, 2], 0.0, &mut r);
        assert!(from_bytes(&mut wrong, bytes).is_err());
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let mut r = StdRng::seed_from_u64(14);
        let mut a = mlp(&[2, 2], 0.0, &mut r);
        assert!(load(&mut a, "/nonexistent/path/net.edt").is_err());
    }
}
