//! Error type for the neural-network framework.

use edde_tensor::TensorError;
use std::fmt;

/// Convenience alias used by every fallible operation in this crate.
pub type Result<T> = std::result::Result<T, NnError>;

/// Errors raised by model construction, forward/backward passes, and
/// optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor-level error bubbled up from `edde-tensor`.
    Tensor(TensorError),
    /// `backward` was called before `forward` populated the layer's cache.
    MissingForwardCache(&'static str),
    /// A layer received an input of unexpected shape.
    BadInput {
        layer: &'static str,
        expected: String,
        got: Vec<usize>,
    },
    /// Model configuration is invalid (e.g. a ResNet depth that doesn't fit
    /// the `6n+2` family).
    BadConfig(String),
    /// Loss computation received inconsistent batch sizes or class counts.
    BadLossInput(String),
    /// Parameter import failed (name or shape mismatch).
    StateMismatch(String),
    /// A non-finite value was produced where one is not allowed.
    NonFinite(&'static str),
    /// Checkpoint I/O failed (read, write, rename, or storage backend).
    ///
    /// Kept as a message string so the error type stays `Clone + PartialEq`;
    /// the originating `std::io::Error` is formatted into it.
    Io(String),
    /// A checkpoint failed its integrity check (bad magic, bad checksum,
    /// truncated frame).
    Corrupt(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::MissingForwardCache(layer) => {
                write!(f, "{layer}: backward called before forward")
            }
            NnError::BadInput {
                layer,
                expected,
                got,
            } => write!(f, "{layer}: expected input {expected}, got {got:?}"),
            NnError::BadConfig(msg) => write!(f, "bad model config: {msg}"),
            NnError::BadLossInput(msg) => write!(f, "bad loss input: {msg}"),
            NnError::StateMismatch(msg) => write!(f, "state mismatch: {msg}"),
            NnError::NonFinite(what) => write!(f, "non-finite value in {what}"),
            NnError::Io(msg) => write!(f, "checkpoint i/o error: {msg}"),
            NnError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_errors_convert() {
        let te = TensorError::Empty("x");
        let ne: NnError = te.clone().into();
        assert_eq!(ne, NnError::Tensor(te));
    }

    #[test]
    fn display_mentions_layer() {
        let e = NnError::BadInput {
            layer: "Dense",
            expected: "[N, 4]".into(),
            got: vec![2, 3],
        };
        assert!(e.to_string().contains("Dense"));
    }
}
