//! The pre-activation-free "basic block" used by CIFAR ResNets
//! (He et al., 2016): conv–bn–relu–conv–bn plus a (possibly projected)
//! shortcut, followed by a final ReLU.

use crate::error::Result;
use crate::infer::InferCtx;
use crate::layer::{join_path, Layer};
use crate::layers::{BatchNorm2d, Conv2d, Relu};
use crate::param::{Mode, Param};
use edde_tensor::ops::add;
use edde_tensor::Tensor;
use rand::Rng;

/// Fused tail of the pure path: `main = relu(main + short)` in place,
/// matching the mutable `add` + ReLU mask arithmetic exactly.
fn add_relu_in_place(main: &mut Tensor, short: &[f32]) {
    for (m, &sv) in main.data_mut().iter_mut().zip(short) {
        let sum = *m + sv;
        *m = sum * (if sum > 0.0 { 1.0 } else { 0.0 });
    }
}

/// A two-convolution residual block.
///
/// When `stride > 1` or the channel count changes, the shortcut becomes a
/// 1×1 strided convolution with batch norm (option B in the ResNet paper);
/// otherwise it is the identity.
#[derive(Clone)]
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    relu_out: Relu,
}

impl BasicBlock {
    /// Builds a block mapping `in_channels` to `out_channels` with the given
    /// stride on the first convolution.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        rng_: &mut impl Rng,
    ) -> Self {
        let conv1 = Conv2d::new(in_channels, out_channels, 3, stride, 1, false, rng_);
        let bn1 = BatchNorm2d::new(out_channels);
        let conv2 = Conv2d::new(out_channels, out_channels, 3, 1, 1, false, rng_);
        let bn2 = BatchNorm2d::new(out_channels);
        let shortcut = if stride != 1 || in_channels != out_channels {
            Some((
                Conv2d::new(in_channels, out_channels, 1, stride, 0, false, rng_),
                BatchNorm2d::new(out_channels),
            ))
        } else {
            None
        };
        BasicBlock {
            conv1,
            bn1,
            relu1: Relu::new(),
            conv2,
            bn2,
            shortcut,
            relu_out: Relu::new(),
        }
    }
}

impl Layer for BasicBlock {
    fn kind(&self) -> &'static str {
        "basic_block"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        let c1 = self.conv1.forward(input, ctx)?;
        let b1 = self.bn1.forward(&c1, ctx)?;
        ctx.recycle(c1);
        let r1 = self.relu1.forward(&b1, ctx)?;
        ctx.recycle(b1);
        let c2 = self.conv2.forward(&r1, ctx)?;
        ctx.recycle(r1);
        let mut main = self.bn2.forward(&c2, ctx)?;
        ctx.recycle(c2);
        match &self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(input, ctx)?;
                let short = bn.forward(&s, ctx)?;
                ctx.recycle(s);
                add_relu_in_place(&mut main, short.data());
                ctx.recycle(short);
            }
            None => add_relu_in_place(&mut main, input.data()),
        }
        Ok(main)
    }

    fn train_forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut main = self.conv1.train_forward(input, mode)?;
        main = self.bn1.train_forward(&main, mode)?;
        main = self.relu1.train_forward(&main, mode)?;
        main = self.conv2.train_forward(&main, mode)?;
        main = self.bn2.train_forward(&main, mode)?;
        let short = match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = conv.train_forward(input, mode)?;
                bn.train_forward(&s, mode)?
            }
            None => input.clone(),
        };
        let sum = add(&main, &short)?;
        self.relu_out.train_forward(&sum, mode)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let g_sum = self.relu_out.backward(grad_out)?;
        // main path
        let mut g = self.bn2.backward(&g_sum)?;
        g = self.conv2.backward(&g)?;
        g = self.relu1.backward(&g)?;
        g = self.bn1.backward(&g)?;
        let g_main_in = self.conv1.backward(&g)?;
        // shortcut path
        let g_short_in = match &mut self.shortcut {
            Some((conv, bn)) => {
                let gs = bn.backward(&g_sum)?;
                conv.backward(&gs)?
            }
            None => g_sum,
        };
        Ok(add(&g_main_in, &g_short_in)?)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        self.conv1.visit_params(&join_path(prefix, "conv1"), f);
        self.bn1.visit_params(&join_path(prefix, "bn1"), f);
        self.conv2.visit_params(&join_path(prefix, "conv2"), f);
        self.bn2.visit_params(&join_path(prefix, "bn2"), f);
        if let Some((conv, bn)) = &mut self.shortcut {
            conv.visit_params(&join_path(prefix, "shortcut.conv"), f);
            bn.visit_params(&join_path(prefix, "shortcut.bn"), f);
        }
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Tensor)) {
        self.bn1.visit_buffers(&join_path(prefix, "bn1"), f);
        self.bn2.visit_buffers(&join_path(prefix, "bn2"), f);
        if let Some((_, bn)) = &mut self.shortcut {
            bn.visit_buffers(&join_path(prefix, "shortcut.bn"), f);
        }
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        self.conv1.visit_params_ref(&join_path(prefix, "conv1"), f);
        self.bn1.visit_params_ref(&join_path(prefix, "bn1"), f);
        self.conv2.visit_params_ref(&join_path(prefix, "conv2"), f);
        self.bn2.visit_params_ref(&join_path(prefix, "bn2"), f);
        if let Some((conv, bn)) = &self.shortcut {
            conv.visit_params_ref(&join_path(prefix, "shortcut.conv"), f);
            bn.visit_params_ref(&join_path(prefix, "shortcut.bn"), f);
        }
    }

    fn visit_buffers_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Tensor)) {
        self.bn1.visit_buffers_ref(&join_path(prefix, "bn1"), f);
        self.bn2.visit_buffers_ref(&join_path(prefix, "bn2"), f);
        if let Some((_, bn)) = &self.shortcut {
            bn.visit_buffers_ref(&join_path(prefix, "shortcut.bn"), f);
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_tensor::rng::rand_uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_shortcut_preserves_shape() {
        let mut r = StdRng::seed_from_u64(0);
        let mut block = BasicBlock::new(8, 8, 1, &mut r);
        let x = rand_uniform(&[2, 8, 6, 6], -1.0, 1.0, &mut r);
        let y = block.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), x.dims());

        // the pure path matches the mutable eval path bit for bit
        let ye = block.train_forward(&x, Mode::Eval).unwrap();
        let mut ctx = InferCtx::new();
        let yp = block.forward(&x, &mut ctx).unwrap();
        assert_eq!(yp.data(), ye.data());
    }

    #[test]
    fn strided_block_downsamples_and_widens() {
        let mut r = StdRng::seed_from_u64(1);
        let mut block = BasicBlock::new(8, 16, 2, &mut r);
        let x = rand_uniform(&[2, 8, 8, 8], -1.0, 1.0, &mut r);
        let y = block.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 16, 4, 4]);

        let ye = block.train_forward(&x, Mode::Eval).unwrap();
        let mut ctx = InferCtx::new();
        let yp = block.forward(&x, &mut ctx).unwrap();
        assert_eq!(yp.dims(), &[2, 16, 4, 4]);
        assert_eq!(yp.data(), ye.data());
    }

    #[test]
    fn backward_returns_input_shaped_gradient() {
        let mut r = StdRng::seed_from_u64(2);
        let mut block = BasicBlock::new(4, 8, 2, &mut r);
        let x = rand_uniform(&[1, 4, 8, 8], -1.0, 1.0, &mut r);
        let y = block.train_forward(&x, Mode::Train).unwrap();
        let g = block.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert!(g.all_finite());
    }

    #[test]
    fn identity_skip_passes_gradient_directly() {
        // With all conv weights zeroed, the block computes relu(0 + x) = relu(x)
        // and the gradient must flow through the skip untouched (for x > 0).
        let mut r = StdRng::seed_from_u64(3);
        let mut block = BasicBlock::new(2, 2, 1, &mut r);
        block.visit_params("", &mut |_, p| p.value.data_mut().fill(0.0));
        // restore BN gamma to 1 so the main path stays exactly zero
        block.visit_params("", &mut |name, p| {
            if name.contains("gamma") {
                p.value.data_mut().fill(1.0);
            }
        });
        let x = Tensor::full(&[1, 2, 3, 3], 2.0);
        let y = block.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), x.data());
        let g = block.backward(&Tensor::ones(y.dims())).unwrap();
        // conv1 weights are zero => main-path input grad is zero; skip passes 1.
        assert!(g.data().iter().all(|&v| (v - 1.0).abs() < 1e-5));
    }

    #[test]
    fn param_paths_include_shortcut_only_when_projected() {
        let mut r = StdRng::seed_from_u64(4);
        let mut plain = BasicBlock::new(4, 4, 1, &mut r);
        let mut names = Vec::new();
        plain.visit_params("b", &mut |n, _| names.push(n.to_string()));
        assert!(names.iter().all(|n| !n.contains("shortcut")));
        assert_eq!(names.len(), 6); // 2 conv weights + 2×(gamma, beta) — conv has no bias

        let mut proj = BasicBlock::new(4, 8, 2, &mut r);
        names.clear();
        proj.visit_params("b", &mut |n, _| names.push(n.to_string()));
        assert!(names.iter().any(|n| n.contains("shortcut.conv")));
    }

    #[test]
    fn gradient_check_through_whole_block() {
        let mut r = StdRng::seed_from_u64(5);
        let block = BasicBlock::new(2, 2, 1, &mut r);
        let x = rand_uniform(&[1, 2, 4, 4], -1.0, 1.0, &mut r);
        let gout = rand_uniform(&[1, 2, 4, 4], -1.0, 1.0, &mut r);

        let mut b2 = block.clone();
        b2.train_forward(&x, Mode::Train).unwrap();
        let gx = b2.backward(&gout).unwrap();

        let loss = |inp: &Tensor| -> f32 {
            let mut b = block.clone();
            let y = b.train_forward(inp, Mode::Train).unwrap();
            y.data()
                .iter()
                .zip(gout.data().iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 9, 21, 31] {
            let mut p = x.clone();
            p.data_mut()[i] += eps;
            let mut m = x.clone();
            m.data_mut()[i] -= eps;
            let num = (loss(&p) - loss(&m)) / (2.0 * eps);
            let ana = gx.data()[i];
            // ReLU kinks make finite differences noisy; use a loose tolerance
            assert!((num - ana).abs() < 6e-2, "x[{i}]: num {num} vs ana {ana}");
        }
    }
}
