//! DenseNet building blocks (Huang et al., 2017): densely connected layers
//! that concatenate their input with newly produced feature maps, and
//! transition layers that compress and downsample between dense blocks.

use super::{concat_channels, split_channels};
use crate::error::{NnError, Result};
use crate::infer::InferCtx;
use crate::layer::{join_path, Layer};
use crate::layers::{BatchNorm2d, Conv2d, Relu};
use crate::param::{Mode, Param};
use edde_tensor::ops::{add, avg_pool2d, avg_pool2d_backward, avg_pool2d_into, out_dim};
use edde_tensor::Tensor;
use rand::Rng;

/// One dense layer: `out = concat(x, conv3x3(relu(bn(x))))`.
///
/// Produces `growth` new channels on top of the incoming ones.
#[derive(Clone)]
pub struct DenseLayer {
    bn: BatchNorm2d,
    relu: Relu,
    conv: Conv2d,
    in_channels: usize,
}

impl DenseLayer {
    /// `in_channels → in_channels + growth`.
    pub fn new(in_channels: usize, growth: usize, rng_: &mut impl Rng) -> Self {
        DenseLayer {
            bn: BatchNorm2d::new(in_channels),
            relu: Relu::new(),
            conv: Conv2d::new(in_channels, growth, 3, 1, 1, false, rng_),
            in_channels,
        }
    }
}

impl Layer for DenseLayer {
    fn kind(&self) -> &'static str {
        "dense_layer"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        let b = self.bn.forward(input, ctx)?;
        let r = self.relu.forward(&b, ctx)?;
        ctx.recycle(b);
        let new = self.conv.forward(&r, ctx)?;
        ctx.recycle(r);
        // concat(input, new) along channels — same layout as concat_channels
        let (n, ca, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let cb = new.dims()[1];
        let plane = h * w;
        let mut out = ctx.alloc(&[n, ca + cb, h, w]);
        for s in 0..n {
            let dst = &mut out.data_mut()[s * (ca + cb) * plane..][..(ca + cb) * plane];
            dst[..ca * plane].copy_from_slice(&input.data()[s * ca * plane..][..ca * plane]);
            dst[ca * plane..].copy_from_slice(&new.data()[s * cb * plane..][..cb * plane]);
        }
        ctx.recycle(new);
        Ok(out)
    }

    fn train_forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut new = self.bn.train_forward(input, mode)?;
        new = self.relu.train_forward(&new, mode)?;
        new = self.conv.train_forward(&new, mode)?;
        concat_channels(input, &new)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (g_direct, g_new) = split_channels(grad_out, self.in_channels)?;
        let mut g = self.conv.backward(&g_new)?;
        g = self.relu.backward(&g)?;
        let g_path = self.bn.backward(&g)?;
        Ok(add(&g_direct, &g_path)?)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        self.bn.visit_params(&join_path(prefix, "bn"), f);
        self.conv.visit_params(&join_path(prefix, "conv"), f);
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Tensor)) {
        self.bn.visit_buffers(&join_path(prefix, "bn"), f);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        self.bn.visit_params_ref(&join_path(prefix, "bn"), f);
        self.conv.visit_params_ref(&join_path(prefix, "conv"), f);
    }

    fn visit_buffers_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Tensor)) {
        self.bn.visit_buffers_ref(&join_path(prefix, "bn"), f);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// A transition layer: `bn → relu → conv1x1 → 2×2 average pool`, halving both
/// channels (typically) and spatial resolution.
#[derive(Clone)]
pub struct Transition {
    bn: BatchNorm2d,
    relu: Relu,
    conv: Conv2d,
    cache_pre_pool_dims: Option<Vec<usize>>,
}

impl Transition {
    /// `in_channels → out_channels`, spatial size halved.
    pub fn new(in_channels: usize, out_channels: usize, rng_: &mut impl Rng) -> Self {
        Transition {
            bn: BatchNorm2d::new(in_channels),
            relu: Relu::new(),
            conv: Conv2d::new(in_channels, out_channels, 1, 1, 0, false, rng_),
            cache_pre_pool_dims: None,
        }
    }
}

impl Layer for Transition {
    fn kind(&self) -> &'static str {
        "transition"
    }

    fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        let b = self.bn.forward(input, ctx)?;
        let r = self.relu.forward(&b, ctx)?;
        ctx.recycle(b);
        let x = self.conv.forward(&r, ctx)?;
        ctx.recycle(r);
        let d = x.dims();
        let oh = out_dim(d[2], 2, 2, 0)?;
        let ow = out_dim(d[3], 2, 2, 0)?;
        let mut out = ctx.alloc(&[d[0], d[1], oh, ow]);
        avg_pool2d_into(&x, 2, 2, &mut out)?;
        ctx.recycle(x);
        Ok(out)
    }

    fn train_forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = self.bn.train_forward(input, mode)?;
        x = self.relu.train_forward(&x, mode)?;
        x = self.conv.train_forward(&x, mode)?;
        self.cache_pre_pool_dims = Some(x.dims().to_vec());
        Ok(avg_pool2d(&x, 2, 2)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .cache_pre_pool_dims
            .take()
            .ok_or(NnError::MissingForwardCache("Transition"))?;
        let g = avg_pool2d_backward(&dims, grad_out, 2, 2)?;
        let g = self.conv.backward(&g)?;
        let g = self.relu.backward(&g)?;
        self.bn.backward(&g)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        self.bn.visit_params(&join_path(prefix, "bn"), f);
        self.conv.visit_params(&join_path(prefix, "conv"), f);
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Tensor)) {
        self.bn.visit_buffers(&join_path(prefix, "bn"), f);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        self.bn.visit_params_ref(&join_path(prefix, "bn"), f);
        self.conv.visit_params_ref(&join_path(prefix, "conv"), f);
    }

    fn visit_buffers_ref(&self, prefix: &str, f: &mut dyn FnMut(&str, &Tensor)) {
        self.bn.visit_buffers_ref(&join_path(prefix, "bn"), f);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_tensor::rng::rand_uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_layer_grows_channels() {
        let mut r = StdRng::seed_from_u64(0);
        let mut layer = DenseLayer::new(8, 4, &mut r);
        let x = rand_uniform(&[2, 8, 4, 4], -1.0, 1.0, &mut r);
        let y = layer.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 12, 4, 4]);
        // first 8 channels are the input, untouched
        let (head, _) = split_channels(&y, 8).unwrap();
        assert_eq!(head, x);

        let ye = layer.train_forward(&x, Mode::Eval).unwrap();
        let mut ctx = InferCtx::new();
        let yp = layer.forward(&x, &mut ctx).unwrap();
        assert_eq!(yp.data(), ye.data());
    }

    #[test]
    fn dense_layer_backward_shape_and_direct_path() {
        let mut r = StdRng::seed_from_u64(1);
        let mut layer = DenseLayer::new(4, 2, &mut r);
        let x = rand_uniform(&[1, 4, 4, 4], -1.0, 1.0, &mut r);
        let y = layer.train_forward(&x, Mode::Train).unwrap();
        // gradient only on the pass-through channels: must reach the input
        // unchanged (plus the bn path contribution from zero grads = 0)
        let mut g = Tensor::zeros(y.dims());
        for v in g.data_mut()[..4 * 16].iter_mut() {
            *v = 1.0;
        }
        let gx = layer.backward(&g).unwrap();
        assert_eq!(gx.dims(), x.dims());
        // conv receives zero gradient => path contribution is zero
        assert!(gx.data().iter().all(|&v| (v - 1.0).abs() < 1e-5));
    }

    #[test]
    fn transition_halves_spatial_and_sets_channels() {
        let mut r = StdRng::seed_from_u64(2);
        let mut t = Transition::new(8, 4, &mut r);
        let x = rand_uniform(&[2, 8, 8, 8], -1.0, 1.0, &mut r);
        let y = t.train_forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 4, 4, 4]);

        let g = t.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert!(g.all_finite());

        let ye = t.train_forward(&x, Mode::Eval).unwrap();
        let mut ctx = InferCtx::new();
        let yp = t.forward(&x, &mut ctx).unwrap();
        assert_eq!(yp.data(), ye.data());
    }

    #[test]
    fn dense_layer_gradient_check() {
        let mut r = StdRng::seed_from_u64(3);
        let layer = DenseLayer::new(2, 2, &mut r);
        let x = rand_uniform(&[1, 2, 3, 3], -1.0, 1.0, &mut r);
        let gout = rand_uniform(&[1, 4, 3, 3], -1.0, 1.0, &mut r);

        let mut l2 = layer.clone();
        l2.train_forward(&x, Mode::Train).unwrap();
        let gx = l2.backward(&gout).unwrap();

        let loss = |inp: &Tensor| -> f32 {
            let mut l = layer.clone();
            let y = l.train_forward(inp, Mode::Train).unwrap();
            y.data()
                .iter()
                .zip(gout.data().iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 7, 17] {
            let mut p = x.clone();
            p.data_mut()[i] += eps;
            let mut m = x.clone();
            m.data_mut()[i] -= eps;
            let num = (loss(&p) - loss(&m)) / (2.0 * eps);
            assert!((num - gx.data()[i]).abs() < 6e-2, "x[{i}]");
        }
    }

    #[test]
    fn transition_backward_requires_forward() {
        let mut r = StdRng::seed_from_u64(4);
        let mut t = Transition::new(2, 2, &mut r);
        assert!(t.backward(&Tensor::zeros(&[1, 2, 2, 2])).is_err());
    }
}
