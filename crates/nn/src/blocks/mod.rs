//! Composite building blocks: residual blocks (ResNet) and dense blocks
//! (DenseNet).

pub mod densenet;
pub mod residual;

pub use densenet::{DenseLayer, Transition};
pub use residual::BasicBlock;

use crate::error::{NnError, Result};
use edde_tensor::Tensor;

/// Concatenates two `[N,C,H,W]` tensors along the channel axis.
pub(crate) fn concat_channels(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 4 || b.rank() != 4 {
        return Err(NnError::BadInput {
            layer: "concat_channels",
            expected: "[N,C,H,W]".into(),
            got: if a.rank() != 4 {
                a.dims().to_vec()
            } else {
                b.dims().to_vec()
            },
        });
    }
    let (n, ca, h, w) = (a.dims()[0], a.dims()[1], a.dims()[2], a.dims()[3]);
    let (nb, cb, hb, wb) = (b.dims()[0], b.dims()[1], b.dims()[2], b.dims()[3]);
    if n != nb || h != hb || w != wb {
        return Err(NnError::BadInput {
            layer: "concat_channels",
            expected: format!("[{n}, *, {h}, {w}]"),
            got: b.dims().to_vec(),
        });
    }
    let plane = h * w;
    let mut out = Tensor::zeros(&[n, ca + cb, h, w]);
    for s in 0..n {
        let dst = &mut out.data_mut()[s * (ca + cb) * plane..][..(ca + cb) * plane];
        dst[..ca * plane].copy_from_slice(&a.data()[s * ca * plane..][..ca * plane]);
        dst[ca * plane..].copy_from_slice(&b.data()[s * cb * plane..][..cb * plane]);
    }
    Ok(out)
}

/// Splits a `[N, CA+CB, H, W]` gradient into the `[N,CA,H,W]` and
/// `[N,CB,H,W]` parts matching a prior [`concat_channels`].
pub(crate) fn split_channels(g: &Tensor, ca: usize) -> Result<(Tensor, Tensor)> {
    if g.rank() != 4 || g.dims()[1] < ca {
        return Err(NnError::BadInput {
            layer: "split_channels",
            expected: format!("[N, >={ca}, H, W]"),
            got: g.dims().to_vec(),
        });
    }
    let (n, c, h, w) = (g.dims()[0], g.dims()[1], g.dims()[2], g.dims()[3]);
    let cb = c - ca;
    let plane = h * w;
    let mut ga = Tensor::zeros(&[n, ca, h, w]);
    let mut gb = Tensor::zeros(&[n, cb, h, w]);
    for s in 0..n {
        let src = &g.data()[s * c * plane..][..c * plane];
        ga.data_mut()[s * ca * plane..][..ca * plane].copy_from_slice(&src[..ca * plane]);
        gb.data_mut()[s * cb * plane..][..cb * plane].copy_from_slice(&src[ca * plane..]);
    }
    Ok((ga, gb))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_then_split_round_trips() {
        let a = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let b = Tensor::from_vec((100..104).map(|v| v as f32).collect(), &[1, 1, 2, 2]).unwrap();
        let c = concat_channels(&a, &b).unwrap();
        assert_eq!(c.dims(), &[1, 3, 2, 2]);
        let (ga, gb) = split_channels(&c, 2).unwrap();
        assert_eq!(ga, a);
        assert_eq!(gb, b);
    }

    #[test]
    fn concat_rejects_mismatched_spatial() {
        let a = Tensor::zeros(&[1, 1, 2, 2]);
        let b = Tensor::zeros(&[1, 1, 3, 3]);
        assert!(concat_channels(&a, &b).is_err());
    }

    #[test]
    fn split_rejects_undersized_channel_axis() {
        let g = Tensor::zeros(&[1, 2, 2, 2]);
        assert!(split_channels(&g, 3).is_err());
    }
}
