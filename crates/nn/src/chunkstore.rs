//! Chunked, shardable storage under the [`CheckpointStore`] trait.
//!
//! A *sharded* member artifact is stored as many small values instead of
//! one opaque blob: each state tensor's coded byte stream (the same
//! per-tensor [`edde_tensor::codec`] stream a whole-blob `EEB2` bundle
//! carries) is split into fixed-size chunks, each chunk independently
//! sealed in the checksummed `EDC2` frame, and a small per-member **index
//! record** (`EDS1`) describes the whole layout: tensor names, ranks,
//! dims, coded lengths, and chunk counts, plus an opaque caller-defined
//! metadata blob.
//!
//! ```text
//! EDS1 index record (sealed in an EDC2 frame by the writer):
//!   magic       : b"EDS1"
//!   version     : u32 LE (currently 1)
//!   member      : u64 LE
//!   chunk_bytes : u64 LE  (chunk size this member was written with)
//!   meta        : u64 LE length + bytes (caller-defined, opaque here)
//!   part count  : u32 LE
//!   per part    : name (u32 LE length + utf-8 bytes)
//!                 rank u32 LE, dims u64 LE × rank
//!                 coded_len u64 LE, chunk_count u32 LE
//!                 storage u8 (0 = chunked, 1 = inline)
//!                 if inline: coded_len payload bytes
//! ```
//!
//! Small parts (coded stream at most [`inline_threshold`] bytes, 1/16 of
//! the chunk size) are stored *inline* in the index record instead of as
//! chunk values of their own. A member's parts are dominated by a few
//! large weight matrices plus many tiny vectors (biases, scales); giving
//! each vector its own store value costs a metadata round-trip per part,
//! which on file-backed stores is the same order as the durable barrier
//! the group commit saves. Inlining folds them into the one index write.
//!
//! Chunks are addressed by a deterministic key encoding
//! ([`chunk_key`]): `member-{m}-chunk-{part:05}-{chunk:08}`. The
//! zero-padding makes lexicographic key order equal numeric `(part,
//! chunk)` order within a member, so a plain sorted directory listing
//! reads back in write order.
//!
//! # Durability contract
//!
//! [`write_member_chunks`] writes every chunk and the index with *relaxed*
//! durability ([`CheckpointStore::put_relaxed`]) — the caller commits the
//! whole group with one durable record written last (a bundle root, a run
//! manifest). This is group commit: one fsync per logical checkpoint
//! instead of one per member, which is where the sharded path's write
//! speedup comes from on fsync-bound stores. A crash before the commit
//! record leaves orphaned chunks that the next session's garbage
//! collection sweeps; a torn chunk is caught by its own CRC frame on
//! read. Chunk puts go through the in-order commit gate
//! ([`edde_tensor::parallel::ordered_commit`]): sealing fans out over the
//! worker pool while store writes happen in ascending `(part, chunk)`
//! order, so fault-injection schedules and partial-write states are
//! deterministic.

use crate::checkpoint::{seal, unseal_checked, CheckpointStore};
use crate::error::{NnError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use edde_tensor::parallel::ordered_commit;
use edde_tensor::EddeConfig;

/// Magic prefix of an `EDS1` index record payload.
pub const INDEX_MAGIC: &[u8; 4] = b"EDS1";

/// Current index record format version.
pub const INDEX_VERSION: u32 = 1;

/// Upper bound on a stored part's rank — corruption guard, matching the
/// bundle format's limit.
const MAX_PART_RANK: usize = 8;

/// Default chunk size in bytes.
pub const DEFAULT_CHUNK_BYTES: usize = edde_tensor::config::DEFAULT_CHUNK_BYTES;

/// The chunk size sharded writes use: `EDDE_CHUNK_BYTES` (any positive
/// integer), defaulting to 64 KiB — a thin per-call view over
/// [`EddeConfig::env_chunk_bytes`], so tests can vary the variable
/// between writes. Long-lived writers should resolve an [`EddeConfig`]
/// once and call [`write_member_chunks_with`] instead; every index
/// record carries the value it was written with, so readers never
/// consult the environment.
pub fn chunk_bytes() -> usize {
    EddeConfig::env_chunk_bytes()
}

/// Store key of chunk `chunk` of part `part` of member `member`. The
/// fixed-width zero padding makes lexicographic order equal numeric
/// `(part, chunk)` order for parts below 10^5 and chunks below 10^8
/// (a single part would have to exceed 6 TiB at the default chunk size
/// to overflow the chunk field).
pub fn chunk_key(member: usize, part: usize, chunk: usize) -> String {
    format!("member-{member}-chunk-{part:05}-{chunk:08}")
}

/// Store key of member `member`'s sharded-bundle index record.
pub fn index_key(member: usize) -> String {
    format!("member-{member}-index")
}

/// Parses a key produced by [`chunk_key`] back into `(member, part,
/// chunk)`; `None` for any other key shape.
pub fn parse_chunk_key(key: &str) -> Option<(usize, usize, usize)> {
    let rest = key.strip_prefix("member-")?;
    let (member, rest) = rest.split_once("-chunk-")?;
    let (part, chunk) = rest.split_once('-')?;
    if member.is_empty() || part.len() != 5 || chunk.len() != 8 {
        return None;
    }
    Some((
        member.parse().ok()?,
        part.parse().ok()?,
        chunk.parse().ok()?,
    ))
}

/// Parses a key produced by [`index_key`] back into the member index;
/// `None` for any other key shape.
pub fn parse_index_key(key: &str) -> Option<usize> {
    key.strip_prefix("member-")?
        .strip_suffix("-index")?
        .parse()
        .ok()
}

/// Chunks a part of `coded_len` bytes occupies at `chunk_bytes` per chunk.
/// Zero-length parts occupy zero chunks.
pub fn part_chunk_count(coded_len: u64, chunk_bytes: u64) -> u32 {
    coded_len.div_ceil(chunk_bytes.max(1)) as u32
}

/// Largest coded stream stored inline in the index record instead of as
/// its own chunk value: 1/16 of the chunk size (4 KiB at the default
/// 64 KiB chunks).
pub fn inline_threshold(chunk_bytes: usize) -> usize {
    chunk_bytes / 16
}

/// Why a sharded read was rejected. Every failure mode of the torn-chunk
/// matrix is a distinct variant, so callers (swap validation, resume
/// logic, operators' logs) react to the cause rather than string-matching.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkError {
    /// A chunk the index record references is absent from the store —
    /// an interrupted write or an over-eager cleanup.
    MissingChunk {
        /// The absent chunk's store key.
        key: String,
    },
    /// A chunk's sealed frame ended early — a torn (partial) write.
    TruncatedChunk {
        /// The torn chunk's store key.
        key: String,
        /// Frame-level rejection detail.
        detail: String,
    },
    /// A chunk failed its CRC or framing on read — in-place corruption.
    CorruptChunk {
        /// The corrupt chunk's store key.
        key: String,
        /// Frame-level rejection detail.
        detail: String,
    },
    /// An index record's stated chunk count disagrees with its own coded
    /// length and chunk size — the index and the chunk grid describe
    /// different layouts.
    CountMismatch {
        /// Name of the offending part.
        part: String,
        /// Chunk count implied by `coded_len` and `chunk_bytes`.
        expected: u32,
        /// Chunk count the index states.
        got: u32,
    },
    /// The index record itself is missing, torn, or malformed.
    Index {
        /// What was wrong with it.
        detail: String,
    },
    /// The storage backend failed (I/O error other than a missing key).
    Store {
        /// The key being read.
        key: String,
        /// Backend error detail.
        detail: String,
    },
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkError::MissingChunk { key } => write!(f, "missing chunk {key:?}"),
            ChunkError::TruncatedChunk { key, detail } => {
                write!(f, "truncated chunk {key:?}: {detail}")
            }
            ChunkError::CorruptChunk { key, detail } => {
                write!(f, "corrupt chunk {key:?}: {detail}")
            }
            ChunkError::CountMismatch {
                part,
                expected,
                got,
            } => write!(
                f,
                "chunk count mismatch for part {part:?}: index states {got}, layout implies {expected}"
            ),
            ChunkError::Index { detail } => write!(f, "bad index record: {detail}"),
            ChunkError::Store { key, detail } => write!(f, "store error at {key:?}: {detail}"),
        }
    }
}

impl std::error::Error for ChunkError {}

impl From<ChunkError> for NnError {
    fn from(e: ChunkError) -> Self {
        match e {
            ChunkError::Store { key, detail } => {
                NnError::Io(format!("store error at {key:?}: {detail}"))
            }
            other => NnError::Corrupt(other.to_string()),
        }
    }
}

/// Layout of one part (state tensor) inside a sharded member.
#[derive(Debug, Clone, PartialEq)]
pub struct PartMeta {
    /// Tensor name (e.g. `"fc0.weight"`).
    pub name: String,
    /// Tensor dims.
    pub dims: Vec<usize>,
    /// Length of the part's coded byte stream.
    pub coded_len: u64,
    /// Chunks the stream is split into (0 for inline parts).
    pub chunks: u32,
    /// The coded stream itself, for parts small enough to live in the
    /// index record ([`inline_threshold`]); `None` for chunked parts.
    pub inline: Option<Bytes>,
}

/// A member's `EDS1` index record: the complete description of its chunk
/// grid plus an opaque caller-defined metadata blob (bundle writers store
/// label/α/arch/class-count/codec there; the trainer stores its progress
/// header).
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkIndex {
    /// Member index the chunks belong to (names the chunk keys).
    pub member: usize,
    /// Chunk size this member was written with.
    pub chunk_bytes: u64,
    /// Caller-defined metadata blob.
    pub meta: Bytes,
    /// Per-part layout, in write order.
    pub parts: Vec<PartMeta>,
}

impl ChunkIndex {
    /// Serializes the index record (unsealed; writers seal it in an
    /// `EDC2` frame).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(INDEX_MAGIC);
        buf.put_u32_le(INDEX_VERSION);
        buf.put_u64_le(self.member as u64);
        buf.put_u64_le(self.chunk_bytes);
        buf.put_u64_le(self.meta.len() as u64);
        buf.put_slice(&self.meta);
        buf.put_u32_le(self.parts.len() as u32);
        for p in &self.parts {
            buf.put_u32_le(p.name.len() as u32);
            buf.put_slice(p.name.as_bytes());
            buf.put_u32_le(p.dims.len() as u32);
            for &d in &p.dims {
                buf.put_u64_le(d as u64);
            }
            buf.put_u64_le(p.coded_len);
            buf.put_u32_le(p.chunks);
            match &p.inline {
                Some(payload) => {
                    buf.put_u8(1);
                    buf.put_slice(payload);
                }
                None => buf.put_u8(0),
            }
        }
        buf.freeze()
    }

    /// Deserializes an (already unsealed) index payload, validating magic,
    /// version, field bounds, and that every part's stated chunk count
    /// matches the layout its `coded_len` and `chunk_bytes` imply
    /// ([`ChunkError::CountMismatch`] otherwise).
    pub fn decode(mut buf: Bytes) -> std::result::Result<Self, ChunkError> {
        let index = |detail: String| ChunkError::Index { detail };
        let need = |buf: &Bytes, n: usize, what: &str| {
            if buf.remaining() < n {
                Err(index(format!("truncated {what}")))
            } else {
                Ok(())
            }
        };
        need(&buf, 4 + 4 + 8 + 8 + 8, "header")?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != INDEX_MAGIC {
            return Err(index(format!("bad magic {magic:?}")));
        }
        let version = buf.get_u32_le();
        if version != INDEX_VERSION {
            return Err(index(format!("unsupported index version {version}")));
        }
        let member = buf.get_u64_le() as usize;
        let chunk_bytes = buf.get_u64_le();
        if chunk_bytes == 0 {
            return Err(index("zero chunk size".into()));
        }
        let meta_len = buf.get_u64_le() as usize;
        need(&buf, meta_len, "meta blob")?;
        let meta = buf.slice(..meta_len);
        buf.advance(meta_len);
        need(&buf, 4, "part count")?;
        let count = buf.get_u32_le() as usize;
        let mut parts = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            need(&buf, 4, "part name length")?;
            let name_len = buf.get_u32_le() as usize;
            need(&buf, name_len, "part name")?;
            let mut raw = vec![0u8; name_len];
            buf.copy_to_slice(&mut raw);
            let name =
                String::from_utf8(raw).map_err(|e| index(format!("part name not utf-8: {e}")))?;
            need(&buf, 4, "part rank")?;
            let rank = buf.get_u32_le() as usize;
            if rank > MAX_PART_RANK {
                return Err(index(format!(
                    "part {name:?}: rank {rank} exceeds the format limit"
                )));
            }
            need(&buf, rank * 8 + 8 + 4 + 1, "part layout")?;
            let dims: Vec<usize> = (0..rank).map(|_| buf.get_u64_le() as usize).collect();
            let coded_len = buf.get_u64_le();
            let chunks = buf.get_u32_le();
            let inline = match buf.get_u8() {
                0 => None,
                1 => {
                    need(&buf, coded_len as usize, "inline part payload")?;
                    let payload = buf.slice(..coded_len as usize);
                    buf.advance(coded_len as usize);
                    Some(payload)
                }
                other => {
                    return Err(index(format!(
                        "part {name:?}: unknown storage mode {other}"
                    )));
                }
            };
            let expected = if inline.is_some() {
                0
            } else {
                part_chunk_count(coded_len, chunk_bytes)
            };
            if chunks != expected {
                return Err(ChunkError::CountMismatch {
                    part: name,
                    expected,
                    got: chunks,
                });
            }
            parts.push(PartMeta {
                name,
                dims,
                coded_len,
                chunks,
                inline,
            });
        }
        Ok(ChunkIndex {
            member,
            chunk_bytes,
            meta,
            parts,
        })
    }
}

/// Writes one member's parts as a chunk grid plus an `EDS1` index record
/// under `index_key` — all with relaxed durability (see the module docs
/// for the group-commit contract; the caller's final durable record
/// commits the group).
///
/// `parts` is `(name, dims, coded stream)` per state tensor — the coded
/// stream is chunked *as bytes*, so reassembly is byte-identical to the
/// whole-blob stream regardless of chunk size. Chunk sealing fans out
/// over the worker pool when `parallel` is set; store puts always happen
/// in ascending `(part, chunk)` order (then the index, last) through the
/// in-order commit gate, so the store's partial states under a crash or
/// injected fault are deterministic.
pub fn write_member_chunks(
    store: &dyn CheckpointStore,
    member: usize,
    index_key: &str,
    meta: &[u8],
    parts: &[(String, Vec<usize>, Vec<u8>)],
    parallel: bool,
) -> Result<ChunkIndex> {
    write_member_chunks_with(
        store,
        member,
        index_key,
        meta,
        parts,
        parallel,
        chunk_bytes(),
    )
}

/// [`write_member_chunks`] with an explicit chunk size instead of the
/// `EDDE_CHUNK_BYTES` knob — for tests and benchmarks, where the
/// environment is process-global and racy.
#[allow(clippy::too_many_arguments)]
pub fn write_member_chunks_with(
    store: &dyn CheckpointStore,
    member: usize,
    index_key: &str,
    meta: &[u8],
    parts: &[(String, Vec<usize>, Vec<u8>)],
    parallel: bool,
    cb: usize,
) -> Result<ChunkIndex> {
    let index = write_chunks_only(store, member, meta, parts, parallel, cb)?;
    store.put_relaxed(index_key, &seal(&index.encode()))?;
    Ok(index)
}

/// Writes a member's chunk grid and returns its index record *without*
/// storing the record — for callers that embed the index in their own
/// commit record (the sharded bundle root) instead of giving it a store
/// key of its own. Parts no larger than [`inline_threshold`] are folded
/// into the returned index and emit no chunks at all.
pub fn write_chunks_only(
    store: &dyn CheckpointStore,
    member: usize,
    meta: &[u8],
    parts: &[(String, Vec<usize>, Vec<u8>)],
    parallel: bool,
    cb: usize,
) -> Result<ChunkIndex> {
    let cb = cb.max(1);
    let inline_max = inline_threshold(cb);
    let index = ChunkIndex {
        member,
        chunk_bytes: cb as u64,
        meta: Bytes::copy_from_slice(meta),
        parts: parts
            .iter()
            .map(|(name, dims, stream)| {
                let inline = (stream.len() <= inline_max).then(|| Bytes::copy_from_slice(stream));
                PartMeta {
                    name: name.clone(),
                    dims: dims.clone(),
                    coded_len: stream.len() as u64,
                    chunks: if inline.is_some() {
                        0
                    } else {
                        part_chunk_count(stream.len() as u64, cb as u64)
                    },
                    inline,
                }
            })
            .collect(),
    };
    let mut jobs: Vec<(String, &[u8])> = Vec::new();
    for (p, (_, _, stream)) in parts.iter().enumerate() {
        if index.parts[p].inline.is_some() {
            continue;
        }
        for (c, piece) in stream.chunks(cb).enumerate() {
            jobs.push((chunk_key(member, p, c), piece));
        }
    }
    ordered_commit(
        0,
        jobs.len(),
        parallel,
        |i| Ok::<Bytes, NnError>(seal(jobs[i].1)),
        |i, sealed| store.put_relaxed(&jobs[i].0, &sealed),
    )?;
    Ok(index)
}

/// Reads and reassembles one part's coded byte stream from its chunk
/// grid, verifying every chunk's frame. Each failure mode is a distinct
/// [`ChunkError`]; the reassembled stream is byte-identical to what the
/// writer chunked.
pub fn read_part(
    store: &dyn CheckpointStore,
    index: &ChunkIndex,
    part: usize,
) -> std::result::Result<Vec<u8>, ChunkError> {
    let meta = index.parts.get(part).ok_or_else(|| ChunkError::Index {
        detail: format!("part {part} out of range ({} parts)", index.parts.len()),
    })?;
    if let Some(payload) = &meta.inline {
        return Ok(payload.to_vec());
    }
    let mut out = Vec::with_capacity(meta.coded_len as usize);
    for c in 0..meta.chunks {
        let key = chunk_key(index.member, part, c as usize);
        if !store.contains(&key) {
            return Err(ChunkError::MissingChunk { key });
        }
        let raw = store.get(&key).map_err(|e| ChunkError::Store {
            key: key.clone(),
            detail: e.to_string(),
        })?;
        let payload = unseal_checked(raw).map_err(|e| {
            if e.is_truncation() {
                ChunkError::TruncatedChunk {
                    key: key.clone(),
                    detail: e.to_string(),
                }
            } else {
                ChunkError::CorruptChunk {
                    key: key.clone(),
                    detail: e.to_string(),
                }
            }
        })?;
        let expected = if u64::from(c + 1) * index.chunk_bytes <= meta.coded_len {
            index.chunk_bytes
        } else {
            meta.coded_len - u64::from(c) * index.chunk_bytes
        };
        if payload.len() as u64 != expected {
            return Err(ChunkError::CorruptChunk {
                key,
                detail: format!(
                    "chunk holds {} bytes, layout expects {expected}",
                    payload.len()
                ),
            });
        }
        out.extend_from_slice(&payload);
    }
    Ok(out)
}

/// Reads and decodes a sealed `EDS1` index record from `key`. A missing,
/// torn, or malformed record is [`ChunkError::Index`] (with a
/// [`ChunkError::CountMismatch`] escalation from
/// [`ChunkIndex::decode`]'s layout check).
pub fn read_index(
    store: &dyn CheckpointStore,
    key: &str,
) -> std::result::Result<ChunkIndex, ChunkError> {
    if !store.contains(key) {
        return Err(ChunkError::Index {
            detail: format!("no index record at {key:?}"),
        });
    }
    let raw = store.get(key).map_err(|e| ChunkError::Store {
        key: key.to_string(),
        detail: e.to_string(),
    })?;
    let payload = unseal_checked(raw).map_err(|e| ChunkError::Index {
        detail: format!("index frame at {key:?}: {e}"),
    })?;
    ChunkIndex::decode(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::MemStore;

    fn sample_parts() -> Vec<(String, Vec<usize>, Vec<u8>)> {
        vec![
            (
                "fc0.weight".into(),
                vec![32, 64],
                (0..200_000u32).map(|i| (i % 251) as u8).collect(),
            ),
            ("fc0.bias".into(), vec![64], vec![7u8; 64 * 4]),
            ("empty".into(), vec![0], Vec::new()),
        ]
    }

    #[test]
    fn chunk_keys_round_trip_and_order_lexicographically() {
        for &(m, p, c) in &[(0, 0, 0), (7, 3, 12), (123, 99_999, 99_999_999)] {
            assert_eq!(parse_chunk_key(&chunk_key(m, p, c)), Some((m, p, c)));
        }
        assert_eq!(parse_index_key(&index_key(42)), Some(42));
        // lexicographic == numeric within a member
        let mut keys: Vec<String> = Vec::new();
        for p in [0usize, 1, 9, 10, 100] {
            for c in [0usize, 1, 9, 10, 99, 1000] {
                keys.push(chunk_key(3, p, c));
            }
        }
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // non-chunk shapes parse to None
        for k in [
            "member-3-progress",
            "member-3-index",
            "member-3-chunk-1-2",
            "member--chunk-00000-00000000",
            "manifest",
        ] {
            assert_eq!(parse_chunk_key(k), None, "{k}");
        }
        assert_eq!(parse_index_key("member-3-progress"), None);
    }

    #[test]
    fn write_then_read_reassembles_byte_identically() {
        let store = MemStore::new();
        let parts = sample_parts();
        let index =
            write_member_chunks_with(&store, 2, "member-2-index", b"hello", &parts, true, 4096)
                .expect("write");
        assert_eq!(index.chunk_bytes, 4096);
        assert_eq!(&index.meta[..], b"hello");
        assert_eq!(index.parts.len(), 3);
        assert_eq!(index.parts[0].chunks, 200_000u64.div_ceil(4096) as u32);
        assert!(index.parts[0].inline.is_none());
        // the 256-byte bias sits exactly at the inline threshold (4096/16)
        assert!(index.parts[1].inline.is_some());
        assert_eq!(index.parts[1].chunks, 0);
        assert!(!store.contains(&chunk_key(2, 1, 0)));
        assert_eq!(index.parts[2].chunks, 0);
        let read_back = read_index(&store, "member-2-index").expect("index");
        assert_eq!(read_back, index);
        for (p, (_, _, stream)) in parts.iter().enumerate() {
            assert_eq!(&read_part(&store, &index, p).expect("part"), stream);
        }
    }

    #[test]
    fn torn_chunk_matrix_yields_distinct_typed_errors() {
        let store = MemStore::new();
        let parts = sample_parts();
        let index = write_member_chunks_with(&store, 0, "member-0-index", b"", &parts, false, 1024)
            .expect("write");

        // missing chunk
        let victim = chunk_key(0, 0, 3);
        let saved = store.get(&victim).unwrap();
        store.remove(&victim).unwrap();
        assert!(matches!(
            read_part(&store, &index, 0),
            Err(ChunkError::MissingChunk { key }) if key == victim
        ));
        store.put(&victim, &saved).unwrap();

        // truncation (torn write)
        store.put(&victim, &saved[..saved.len() - 9]).unwrap();
        assert!(matches!(
            read_part(&store, &index, 0),
            Err(ChunkError::TruncatedChunk { key, .. }) if key == victim
        ));

        // bit flip
        let mut flipped = saved.to_vec();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        store.put(&victim, &flipped).unwrap();
        assert!(matches!(
            read_part(&store, &index, 0),
            Err(ChunkError::CorruptChunk { key, .. }) if key == victim
        ));
        store.put(&victim, &saved).unwrap();

        // index/chunk count mismatch (crafted index record)
        let mut bad = index.clone();
        bad.parts[0].chunks += 1;
        assert!(matches!(
            ChunkIndex::decode(bad.encode()),
            Err(ChunkError::CountMismatch { expected, got, .. })
                if got == expected + 1
        ));

        // torn index record
        let sealed_index = store.get("member-0-index").unwrap();
        store
            .put("member-0-index", &sealed_index[..sealed_index.len() / 2])
            .unwrap();
        assert!(matches!(
            read_index(&store, "member-0-index"),
            Err(ChunkError::Index { .. })
        ));
        store.remove("member-0-index").unwrap();
        assert!(matches!(
            read_index(&store, "member-0-index"),
            Err(ChunkError::Index { .. })
        ));
    }

    #[test]
    fn index_round_trips_through_wire_format() {
        let index = ChunkIndex {
            member: 9,
            chunk_bytes: 512,
            meta: Bytes::copy_from_slice(b"\x01\x02"),
            parts: vec![
                PartMeta {
                    name: "conv1.weight".into(),
                    dims: vec![8, 3, 3, 3],
                    coded_len: 5000,
                    chunks: part_chunk_count(5000, 512),
                    inline: None,
                },
                PartMeta {
                    name: "conv1.bias".into(),
                    dims: vec![8],
                    coded_len: 32,
                    chunks: 0,
                    inline: Some(Bytes::copy_from_slice(&[9u8; 32])),
                },
            ],
        };
        assert_eq!(ChunkIndex::decode(index.encode()).unwrap(), index);
    }

    #[test]
    fn inline_parts_reassemble_and_validate() {
        let store = MemStore::new();
        let parts = vec![
            ("w".to_string(), vec![4, 4], vec![3u8; 64]),
            ("b".to_string(), vec![4], vec![5u8; 16]),
        ];
        // chunk size 1024 → inline threshold 64: both parts fit inline,
        // so the store holds no chunk values at all.
        let index = write_member_chunks_with(&store, 5, "member-5-index", b"", &parts, false, 1024)
            .expect("write");
        assert!(index.parts.iter().all(|p| p.inline.is_some()));
        assert!(!store.contains(&chunk_key(5, 0, 0)));
        for (p, (_, _, stream)) in parts.iter().enumerate() {
            assert_eq!(&read_part(&store, &index, p).expect("part"), stream);
        }
        // an inline part claiming chunks is a layout contradiction
        let mut bad = index.clone();
        bad.parts[0].chunks = 1;
        assert!(matches!(
            ChunkIndex::decode(bad.encode()),
            Err(ChunkError::CountMismatch {
                expected: 0,
                got: 1,
                ..
            })
        ));
    }
}
