#!/bin/bash
cd /root/repo
run() {
  name=$1; shift
  echo "=== $name started $(date +%T) ===" >> results/progress.log
  ./target/release/$name "$@" > results/$name.txt 2> results/$name.log
  echo "=== $name done $(date +%T) ===" >> results/progress.log
}
run fig5_beta_sweep
run table3_nlp
run fig8_similarity --quick
run fig1_bias_variance --quick
run fig7_accuracy_vs_epochs --quick --resnet-only
run table6_ablation --quick
mv results/table2_cv.txt results/table2_cv_resnet.txt 2>/dev/null
mv results/table2_cv.log results/table2_cv_resnet.log 2>/dev/null
run table2_cv --quick --densenet-only
mv results/table2_cv.txt results/table2_cv_densenet_quick.txt 2>/dev/null
echo REST_DONE >> results/progress.log
