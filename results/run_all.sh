#!/bin/bash
cd /root/repo
run() {
  echo "=== $1 started $(date +%T) ===" >> results/progress.log
  shift_name=$1; shift
  ./target/release/$shift_name "$@" > results/$shift_name.txt 2> results/$shift_name.log
  echo "=== $shift_name done $(date +%T) ===" >> results/progress.log
}
run table2_cv table2_cv --resnet-only
run table4_diversity table4_diversity
run table5_gamma table5_gamma
run table6_ablation table6_ablation
run fig1_bias_variance fig1_bias_variance
run fig8_similarity fig8_similarity
run fig5_beta_sweep fig5_beta_sweep
run table3_nlp table3_nlp
run fig7_accuracy_vs_epochs fig7_accuracy_vs_epochs --resnet-only
mv results/table2_cv.txt results/table2_cv_resnet.txt 2>/dev/null
mv results/table2_cv.log results/table2_cv_resnet.log 2>/dev/null
run table2_cv table2_cv --densenet-only
echo ALL_DONE >> results/progress.log
