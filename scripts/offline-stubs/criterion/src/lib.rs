//! Offline stub for `criterion` (see DESIGN.md, "Offline verification").
//!
//! Compiles the workspace's `harness = false` bench targets without
//! crates.io. Each registered bench routine is executed once, so a stub
//! `cargo bench` run still smoke-tests the bench bodies, but no timing or
//! statistics are produced.

pub use std::hint::black_box;

/// How `iter_batched` reuses setup values (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Stub measurement driver: runs each routine once.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(&mut self, id: I, mut f: F) -> &mut Self {
        eprintln!("stub-criterion: {id}");
        let mut b = Bencher {};
        f(&mut b);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("stub-criterion group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// Stub benchmark group.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(&mut self, id: I, mut f: F) -> &mut Self {
        eprintln!("stub-criterion: {}/{id}", self.name);
        let mut b = Bencher {};
        f(&mut b);
        self
    }

    pub fn finish(self) {}
}

/// Stub bencher: executes the routine a single time.
pub struct Bencher {}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
    }

    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut input = setup();
        black_box(routine(&mut input));
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
