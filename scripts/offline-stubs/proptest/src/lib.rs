//! Offline stub for `proptest` (see DESIGN.md, "Offline verification").
//!
//! The `proptest!` macro expands to nothing, so property bodies are not
//! run offline (clippy is invoked with `-A unused` because that leaves
//! imports in property-test files unused). Strategy constructor functions
//! *outside* the macro still have to type-check, so `Strategy`, `Just`,
//! tuple/range strategies, and `prop::collection::vec` exist at the type
//! level with the same composition surface (`prop_map`, `prop_flat_map`).

use std::marker::PhantomData;

/// Type-level stand-in for `proptest::strategy::Strategy`.
pub trait Strategy: Sized {
    type Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F, O> {
        Map(self, f, PhantomData)
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F, S> {
        FlatMap(self, f, PhantomData)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F, O>(S, F, PhantomData<O>);

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F, O> {
    type Value = O;
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F, T>(S, F, PhantomData<T>);

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F, T> {
    type Value = T::Value;
}

/// A strategy producing exactly one value.
pub struct Just<T>(pub T);

impl<T> Strategy for Just<T> {
    type Value = T;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Configuration accepted by `#![proptest_config(...)]` (unused offline,
/// but referenced from non-macro positions in some suites).
#[derive(Debug, Clone, Default)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod collection {
    use super::Strategy;
    use std::marker::PhantomData;

    /// Strategy for `Vec`s of `n` elements drawn from `element`.
    pub struct VecStrategy<S>(S, PhantomData<usize>);

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
    }

    pub fn vec<S: Strategy>(element: S, _size: usize) -> VecStrategy<S> {
        VecStrategy(element, PhantomData)
    }
}

/// No-op stand-in for the `proptest!` macro: property bodies are skipped
/// offline (see crate docs).
#[macro_export]
macro_rules! proptest {
    ($($tt:tt)*) => {};
}

pub mod prelude {
    pub use crate::collection as prop_collection;
    pub use crate::proptest;
    pub use crate::{Just, ProptestConfig, Strategy};

    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    // The stub only has to type-check strategy composition.
    #[allow(dead_code)]
    fn composes() -> impl Strategy<Value = Vec<(usize, f32)>> {
        (1usize..4).prop_flat_map(|n| {
            prop::collection::vec((0usize..9, -1.0f32..1.0).prop_map(|(a, b)| (a, b)), n)
        })
    }

    proptest! {
        #[test]
        fn swallowed(_x in 0usize..4) { unreachable!() }
    }

    #[test]
    fn config_builds() {
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
