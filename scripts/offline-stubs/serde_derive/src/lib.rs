//! Offline stub for `serde_derive`: the stub `serde` traits are
//! blanket-implemented for every type, so both derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
