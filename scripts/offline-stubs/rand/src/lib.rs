//! Offline stub for the `rand` crate (see DESIGN.md, "Offline verification").
//!
//! API-compatible with the subset of `rand` 0.10 this workspace uses:
//! `Rng`, `RngExt` (`random`, `random_range`, `random_bool`), `SeedableRng`
//! and `rngs::StdRng`. The generator is a real splitmix64, so statistical
//! tests behave sensibly, but the stream differs from the real `StdRng`
//! (ChaCha12) — two stream-tuned tests are skipped by name in offline mode.

/// Base random source: everything derives from `next_u64`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable from the standard uniform distribution.
pub trait StandardUniform: Sized {
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn from_bits(bits: u64) -> Self { bits as $t }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl StandardUniform for f32 {
    fn from_bits(bits: u64) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for f64 {
    fn from_bits(bits: u64) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every u64 is valid.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let u = <$t as StandardUniform>::from_bits(rng.next_u64());
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A value from the standard uniform distribution (`[0, 1)` for
    /// floats, full width for integers, fair coin for `bool`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// A uniform value in `range`.
    fn random_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy. The stub derives it from the
    /// system clock — good enough for the non-reproducible paths.
    fn from_os_rng() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        Self::seed_from_u64(nanos)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Stub `StdRng`: splitmix64. Deterministic and statistically sound,
    /// but NOT the real `StdRng` stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
        for _ in 0..1000 {
            let f: f32 = a.random();
            assert!((0.0..1.0).contains(&f));
            let i = a.random_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = a.random_range(0usize..=4);
            assert!(j <= 4);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let mut mean = 0.0f64;
        for _ in 0..10_000 {
            mean += r.random::<f64>();
        }
        mean /= 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
