//! Offline stub for `serde` (see DESIGN.md, "Offline verification").
//!
//! The workspace only uses serde as derive-position trait bounds (no
//! serializer crate is in the dependency set), so the stub traits are
//! marker-only and blanket-implemented; the re-exported derives expand to
//! nothing.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}

pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
