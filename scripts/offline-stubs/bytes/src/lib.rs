//! Offline stub for the `bytes` crate (see DESIGN.md, "Offline
//! verification"). A fully functional implementation of the subset this
//! workspace uses: `Bytes` (cheap cloned/sliced views over shared
//! storage), `BytesMut`, and the `Buf`/`BufMut` traits with the
//! little-endian accessors the checkpoint/bundle codecs rely on.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Read cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes remaining ahead of the cursor.
    fn remaining(&self) -> usize;
    /// The remaining bytes as one contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Write cursor appending to a growable byte buffer.
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

/// Cheaply cloneable, sliceable view over shared immutable bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length of the view.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Grows or shrinks to `len`, filling new bytes with `val`.
    pub fn resize(&mut self, len: usize, val: u8) {
        self.data.resize(len, val);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f32_le(1.5);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.get_f32_le(), 1.5);
        let mut rest = [0u8; 3];
        b.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slices_share_storage_and_bound_check() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(..2).as_ref(), &[2, 3]);
        assert_eq!(b.len(), 5);
    }
}
