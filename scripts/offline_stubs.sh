#!/usr/bin/env bash
# Materializes the offline dependency stubs into /tmp/stubs.
#
# The dev container has no crates.io access; `scripts/check.sh --offline`
# and `scripts/bench.sh --offline` patch the dependency graph to these
# API-compatible stub crates (see DESIGN.md, "Offline verification").
# /tmp is ephemeral, so the stub sources are kept in-repo under
# scripts/offline-stubs/ and copied out here; re-running is idempotent.
set -euo pipefail
cd "$(dirname "$0")/.."

DEST="${1:-/tmp/stubs}"
mkdir -p "$DEST"
for crate in rand bytes serde serde_derive proptest criterion; do
    rm -rf "${DEST:?}/$crate"
    cp -r "scripts/offline-stubs/$crate" "$DEST/$crate"
done

cat >"$DEST/patch.toml" <<EOF
[patch.crates-io]
rand = { path = "$DEST/rand" }
bytes = { path = "$DEST/bytes" }
serde = { path = "$DEST/serde" }
serde_derive = { path = "$DEST/serde_derive" }
proptest = { path = "$DEST/proptest" }
criterion = { path = "$DEST/criterion" }
EOF

echo "materialized offline stubs at $DEST"
