#!/usr/bin/env bash
# Local/CI gate: formatting, lints, and the tier-1 build+test pass.
#
# Usage: scripts/check.sh [--offline]
#
# --offline patches every external dependency to the API-compatible stub
# crates in /tmp/stubs (see DESIGN.md, "Offline verification") so the gate
# runs on machines without crates.io access. Two statistical tests are
# RNG-stream-sensitive and known to fail under the stub rand; the offline
# mode skips them by name. The stub proptest macros are no-ops, which
# leaves imports in property-test files unused, so offline clippy allows
# the `unused` lint group.
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=false
CARGO=(cargo)
CLIPPY=(cargo clippy --workspace --all-targets -- -D warnings)
SKIP_ARGS=()
if [[ "${1:-}" == "--offline" ]]; then
    OFFLINE=true
    # /tmp is ephemeral: regenerate the stub crates from their in-repo
    # sources (scripts/offline-stubs/) whenever they are missing.
    [[ -f /tmp/stubs/patch.toml ]] || scripts/offline_stubs.sh
    CARGO=(cargo --config /tmp/stubs/patch.toml --offline)
    export CARGO_NET_OFFLINE=true
    # `cargo clippy` re-invokes cargo without forwarding --config, so the
    # patch has to come from a config file in CARGO_HOME instead.
    mkdir -p /tmp/stub-cargo-home
    cp /tmp/stubs/patch.toml /tmp/stub-cargo-home/config.toml
    CLIPPY=(env CARGO_HOME=/tmp/stub-cargo-home
        cargo clippy --workspace --all-targets --offline -- -D warnings -A unused)
    SKIP_ARGS=(--
        --skip beta_transfer_distance_is_monotone
        --skip member_alpha_weights_shape_the_vote)
fi

echo "== rustfmt =="
"${CARGO[@]}" fmt --all -- --check

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    "${CLIPPY[@]}"
else
    echo "clippy unavailable; skipping"
fi

echo "== build (release) =="
# --workspace: the root package alone would skip the edde-bench binaries,
# leaving stale release drivers in target/release/.
"${CARGO[@]}" build --release --workspace

echo "== tests =="
"${CARGO[@]}" test -q --workspace "${SKIP_ARGS[@]}"

echo "OK"
