#!/usr/bin/env bash
# Kernel benchmark runner: measures the tensor execution layer (SIMD
# matmul, im2col convolution, training steps, ensemble inference,
# parallel-member training) and writes BENCH_tensor.json at the repo
# root, embedding the recorded seed baseline
# (results/bench_baseline_seed.json) so the JSON carries its own
# before/after speedups. Every run also appends a timestamped one-line
# record to BENCH_history.jsonl, so the trajectory across commits
# survives BENCH_tensor.json being overwritten.
#
# Usage: scripts/bench.sh [--offline] [--quick] [--out FILE] [--label TEXT]
#                         [--history FILE]
#
# --offline  build against the stub crates in /tmp/stubs (no crates.io)
# --quick    5 iterations per workload instead of 20 — the CI fast mode
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO=(cargo)
PASS=()
OUT=BENCH_tensor.json
HISTORY=BENCH_history.jsonl
LABEL=""
while [[ $# -gt 0 ]]; do
    case "$1" in
    --offline)
        [[ -f /tmp/stubs/patch.toml ]] || scripts/offline_stubs.sh
        CARGO=(cargo --config /tmp/stubs/patch.toml --offline)
        export CARGO_NET_OFFLINE=true
        ;;
    --quick) PASS+=(--quick) ;;
    --out)
        OUT="$2"
        shift
        ;;
    --history)
        HISTORY="$2"
        shift
        ;;
    --label)
        LABEL="$2"
        shift
        ;;
    *)
        echo "unknown argument: $1" >&2
        exit 2
        ;;
    esac
    shift
done

BASELINE_ARGS=()
if [[ -f results/bench_baseline_seed.json ]]; then
    BASELINE_ARGS=(--baseline results/bench_baseline_seed.json)
fi
LABEL_ARGS=()
if [[ -n "$LABEL" ]]; then
    LABEL_ARGS=(--label "$LABEL")
fi

"${CARGO[@]}" run --release -p edde-bench --bin bench_tensor -- \
    --out "$OUT" --history "$HISTORY" \
    "${BASELINE_ARGS[@]}" "${LABEL_ARGS[@]}" "${PASS[@]}"

echo "wrote $OUT (history: $HISTORY)"
