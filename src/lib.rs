//! # edde
//!
//! Facade crate for the EDDE reproduction — *Efficient Diversity-Driven
//! Ensemble for Deep Neural Networks* (Zhang, Jiang, Shao, Cui; ICDE 2020)
//! rebuilt from scratch in Rust.
//!
//! The workspace is split into five layers, re-exported here:
//!
//! * [`tensor`] (`edde-tensor`) — dense `f32` tensors, parallel matmul,
//!   im2col convolution;
//! * [`nn`] (`edde-nn`) — layers, backprop, SGD, LR schedules, and the
//!   paper's architectures (ResNet, DenseNet, Text-CNN);
//! * [`data`] (`edde-data`) — datasets, k-fold splits, augmentation, and
//!   synthetic CIFAR/IMDB stand-ins;
//! * [`core`] (`edde-core`) — EDDE itself (Algorithm 1) plus the Single
//!   Model, Bagging, AdaBoost.M1, AdaBoost.NC, Snapshot, and BANs
//!   baselines, with the diversity measure (Eq. 2/3/7), β-knowledge
//!   transfer, and bias/variance analysis;
//! * [`serve`] (`edde-serve`) — overload-safe batched serving on a
//!   frozen ensemble: bounded admission queue, per-request deadlines,
//!   pressure-tiered load shedding, and atomic bundle hot-swap.
//!
//! Long runs are fault tolerant: the trainer rolls back and retries on
//! divergence ([`core::recovery::RecoveryPolicy`]), checkpoints are
//! checksummed and written atomically ([`nn::checkpoint`]), and the
//! sequential methods can resume an interrupted run from a
//! [`core::runstate::RunSession`] via
//! [`core::methods::EnsembleMethod::run_resumable`].
//!
//! Serving is separate from training: a trained ensemble freezes into an
//! immutable [`core::FrozenEnsemble`] — `Arc`-shareable, allocation-free
//! in steady state, bit-identical to the training-stack predictions, and
//! exportable as a single CRC-sealed bundle loadable without any trainer
//! code.
//!
//! ## Quickstart
//!
//! ```
//! use edde::prelude::*;
//! use std::sync::Arc;
//!
//! // A small synthetic image task standing in for CIFAR.
//! let data = SynthImages::generate(&SynthImagesConfig::tiny(4), 42);
//!
//! // One architecture shared by every method (the paper's protocol).
//! let factory: ModelFactory = Arc::new(|rng| {
//!     Ok(resnet(&ResNetConfig { depth: 8, width: 4, in_channels: 3, num_classes: 4 }, rng)?)
//! });
//! let env = ExperimentEnv::new(
//!     data,
//!     factory,
//!     Trainer { batch_size: 32, ..Trainer::default() },
//!     0.1,
//!     7,
//! );
//!
//! // Train a 2-member EDDE ensemble (tiny budget for the doc test).
//! let result = Edde::new(2, 2, 1, 0.1, 0.7).run(&env).unwrap();
//! assert_eq!(result.model.len(), 2);
//! ```

pub use edde_core as core;
pub use edde_data as data;
pub use edde_nn as nn;
pub use edde_serve as serve;
pub use edde_tensor as tensor;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use edde_core::bias_variance::{bias_variance, BiasVariance};
    pub use edde_core::diversity::{ensemble_diversity, model_diversity, similarity_matrix};
    pub use edde_core::evaluate::{summarize, MethodSummary};
    pub use edde_core::methods::{
        AdaBoostM1, AdaBoostNc, Bagging, Bans, Edde, EnsembleMethod, Ncl, RunResult, SingleModel,
        Snapshot, TracePoint, TransferMode,
    };
    pub use edde_core::report::{matrix_table, pct, summary_table, Table};
    pub use edde_core::transfer::{
        beta_probe, select_beta, transfer_partial, BetaProbeConfig, BetaProbePoint,
    };
    pub use edde_core::{env_bool, env_f64, env_usize, BundleCodec, BundleError};
    pub use edde_core::{
        epoch_seed, eval_batch, EddeConfig, EddeConfigBuilder, EnsembleMember, EnsembleModel,
        EpochCheckpoints, ExperimentEnv, FaultPlan, FaultyStore, FrozenEnsemble, FrozenMember,
        LossSpec, MemberProgress, MemberRecord, ModelFactory, NetworkBuilder, RecoveryPolicy,
        RunManifest, RunProtocol, RunSession, ShardedEnsemble, TrainEvent, TrainLoop,
        TrainObserver, TrainRng, TrainStats, Trainer,
    };
    pub use edde_data::synth::{
        gaussian_blobs, GaussianBlobsConfig, SynthImages, SynthImagesConfig, SynthText,
        SynthTextConfig,
    };
    pub use edde_data::{Batcher, Dataset, KFold, TrainTest};
    pub use edde_nn::checkpoint::{CheckpointStore, FsStore, MemStore};
    pub use edde_nn::models::{
        densenet, mlp, resnet, textcnn, DenseNetConfig, ResNetConfig, TextCnnConfig,
    };
    pub use edde_nn::optim::{LrSchedule, Sgd};
    pub use edde_nn::{Mode, Network};
    pub use edde_serve::{
        Priority, ServeConfig, ServeCore, ServeError, ServeFaultPlan, SubmitOptions,
    };
    pub use edde_tensor::Tensor;
}
