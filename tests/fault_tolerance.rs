//! Fault-tolerance integration tests: divergence recovery inside the
//! trainer, resumable ensemble runs surviving a mid-run kill, and
//! checkpoint-store write failures. Budgets are tiny; the point is the
//! recovery plumbing, not accuracy.

use edde::prelude::*;
use std::sync::Arc;

/// 3 classes x 35 train samples = 105; batch 16 -> 7 optimizer steps per
/// epoch. The step arithmetic in the tests below relies on these numbers.
fn blob_env(seed: u64, recovery: RecoveryPolicy, fault: Option<FaultPlan>) -> ExperimentEnv {
    let data = gaussian_blobs(
        &GaussianBlobsConfig {
            classes: 3,
            dim: 6,
            train_per_class: 35,
            test_per_class: 15,
            spread: 0.9,
        },
        seed,
    );
    let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 20, 3], 0.0, r)));
    ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            recovery,
            fault,
            ..Trainer::default()
        },
        0.1,
        seed,
    )
}

#[test]
fn injected_nan_loss_does_not_abort_an_ensemble_run() {
    // One poisoned step early in member 1 of 2: default recovery rolls the
    // epoch back and the whole ensemble still trains to completion.
    let env = blob_env(
        50,
        RecoveryPolicy::default(),
        Some(FaultPlan::nan_loss_at_step(5)),
    );
    let run = Bagging::new(2, 3).run(&env).unwrap();
    assert_eq!(run.model.len(), 2);
    let acc = run.trace.last().unwrap().test_accuracy;
    assert!(acc > 0.7, "accuracy after recovery {acc}");
}

#[test]
fn without_recovery_the_same_fault_is_fatal() {
    let env = blob_env(
        50,
        RecoveryPolicy::disabled(),
        Some(FaultPlan::nan_loss_at_step(5)),
    );
    let err = Bagging::new(2, 3).run(&env).unwrap_err();
    assert!(err.to_string().contains("diverged"), "{err}");
}

#[test]
fn killed_bagging_run_resumes_to_the_identical_ensemble() {
    // Reference: an uninterrupted resumable run.
    let env = blob_env(51, RecoveryPolicy::default(), None);
    let store_full = MemStore::new();
    let full = Bagging::new(3, 3).run_resumable(&env, &store_full).unwrap();

    // "Kill" a second run mid-member-2: a NaN at global step 30 (member 2
    // spans steps 21..42) with recovery disabled aborts the run after
    // member 1 was persisted.
    let store = MemStore::new();
    let dying = blob_env(
        51,
        RecoveryPolicy::disabled(),
        Some(FaultPlan::nan_loss_at_step(30)),
    );
    Bagging::new(3, 3)
        .run_resumable(&dying, &store)
        .unwrap_err();
    assert!(store.contains("member-0"), "member 1 should have survived");
    assert!(!store.contains("member-1"), "member 2 must not be recorded");

    // Resume with a clean environment on the same store: the completed
    // prefix is restored, members 2..3 are trained, and the resulting
    // ensemble matches the uninterrupted run bit for bit.
    let clean = blob_env(51, RecoveryPolicy::default(), None);
    let resumed = Bagging::new(3, 3).run_resumable(&clean, &store).unwrap();
    assert_eq!(resumed.model.len(), 3);
    assert_eq!(resumed.trace.len(), full.trace.len());
    for (a, b) in full.trace.iter().zip(resumed.trace.iter()) {
        assert_eq!(a.cumulative_epochs, b.cumulative_epochs);
        assert_eq!(a.test_accuracy, b.test_accuracy);
    }
    let x = env.data.test.features();
    assert_eq!(
        full.model.soft_targets(x).unwrap().data(),
        resumed.model.soft_targets(x).unwrap().data(),
        "resumed ensemble must predict identically to the uninterrupted one"
    );
}

#[test]
fn killed_edde_run_resumes_to_the_identical_ensemble() {
    // Same protocol for the paper's method, where resuming must also
    // reproduce the diversity-driven loss targets and alpha weights.
    // Round 1 trains 3 epochs (21 steps); the fault at step 25 kills
    // round 2.
    let method = Edde::new(3, 3, 2, 0.1, 0.7);
    let env = blob_env(52, RecoveryPolicy::default(), None);
    let store_full = MemStore::new();
    let full = method.run_resumable(&env, &store_full).unwrap();

    let store = MemStore::new();
    let dying = blob_env(
        52,
        RecoveryPolicy::disabled(),
        Some(FaultPlan::nan_loss_at_step(25)),
    );
    method.run_resumable(&dying, &store).unwrap_err();
    assert!(store.contains("member-0"));

    let clean = blob_env(52, RecoveryPolicy::default(), None);
    let resumed = method.run_resumable(&clean, &store).unwrap();
    assert_eq!(resumed.model.len(), 3);
    let alphas_full: Vec<f32> = full.model.members().iter().map(|m| m.alpha).collect();
    let alphas_res: Vec<f32> = resumed.model.members().iter().map(|m| m.alpha).collect();
    assert_eq!(alphas_full, alphas_res, "alpha weights must survive resume");
    let x = env.data.test.features();
    assert_eq!(
        full.model.soft_targets(x).unwrap().data(),
        resumed.model.soft_targets(x).unwrap().data()
    );
}

#[test]
fn failed_checkpoint_write_surfaces_as_io_error_and_leaves_a_resumable_store() {
    // The very first store write (member 1's network) fails; the run
    // aborts with an I/O error, the store is left consistent (empty), and
    // a retry on the same store completes normally.
    let method = Bagging::new(2, 2);
    let env = blob_env(53, RecoveryPolicy::default(), None);
    let store = FaultyStore::new(MemStore::new(), FaultPlan::fail_put(0));
    let err = method.run_resumable(&env, &store).unwrap_err();
    assert!(err.to_string().contains("injected"), "{err}");

    let store = store.into_inner();
    assert!(
        !store.contains("manifest"),
        "no torn manifest after failure"
    );
    let run = method.run_resumable(&env, &store).unwrap();
    assert_eq!(run.model.len(), 2);
}

#[test]
fn resuming_under_a_different_configuration_is_refused() {
    let env = blob_env(54, RecoveryPolicy::default(), None);
    let store = MemStore::new();
    Bagging::new(2, 2).run_resumable(&env, &store).unwrap();

    // Same method, different member count -> fingerprint mismatch.
    let err = Bagging::new(3, 2).run_resumable(&env, &store).unwrap_err();
    assert!(err.to_string().contains("fingerprint"), "{err}");

    // Different method on the same store -> refused outright.
    let err = Edde::new(2, 2, 2, 0.1, 0.7)
        .run_resumable(&env, &store)
        .unwrap_err();
    assert!(err.to_string().contains("refusing"), "{err}");
}

#[test]
fn methods_with_a_single_trajectory_reject_resumable_runs() {
    // NCL trains all members inside one joint optimization trajectory, so
    // neither member- nor epoch-boundary resume applies; the default impl
    // says so.
    let env = blob_env(55, RecoveryPolicy::default(), None);
    let store = MemStore::new();
    let err = Ncl::new(2, 2, 1, 0.5)
        .run_resumable(&env, &store)
        .unwrap_err();
    assert!(err.to_string().contains("resumable"), "{err}");
}

#[test]
fn killed_snapshot_run_resumes_to_the_identical_ensemble() {
    // Snapshot's cycles share one warm-started trajectory; resuming must
    // restore the last completed snapshot as the live model (plus any
    // in-flight cycle's epoch progress) and keep the remaining cycles
    // bit-exact.
    let method = Snapshot::new(3, 2);
    let env = blob_env(57, RecoveryPolicy::default(), None);
    let store_full = MemStore::new();
    let full = method.run_resumable(&env, &store_full).unwrap();

    // 2 epochs x 7 steps = 14 steps per cycle; step 24 lands in cycle 2's
    // second epoch (steps 21..27), after cycle 1 was recorded and cycle
    // 2's epoch-1 boundary progress was persisted.
    let store = MemStore::new();
    let dying = blob_env(
        57,
        RecoveryPolicy::disabled(),
        Some(FaultPlan::nan_loss_at_step(24)),
    );
    method.run_resumable(&dying, &store).unwrap_err();
    assert!(store.contains("member-0"), "cycle 1 should be recorded");
    assert!(
        store.contains("member-1-progress"),
        "cycle 2's epoch progress should be persisted"
    );

    let clean = blob_env(57, RecoveryPolicy::default(), None);
    let resumed = method.run_resumable(&clean, &store).unwrap();
    assert_eq!(resumed.model.len(), 3);
    let x = env.data.test.features();
    assert_eq!(
        full.model.soft_targets(x).unwrap().data(),
        resumed.model.soft_targets(x).unwrap().data(),
        "resumed snapshot ensemble must predict identically"
    );
}

#[test]
fn filesystem_store_supports_kill_and_resume_across_processes() {
    // The same resume protocol through FsStore: everything lands on disk
    // (atomic, checksummed v2 frames), and a fresh store handle — as a
    // restarted process would create — resumes the run.
    let dir = std::env::temp_dir().join(format!("edde-ft-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let method = Bagging::new(2, 2);

    let env = blob_env(56, RecoveryPolicy::default(), None);
    let store_full = MemStore::new();
    let full = method.run_resumable(&env, &store_full).unwrap();

    let dying = blob_env(
        56,
        RecoveryPolicy::disabled(),
        // 2 epochs x 7 steps = 14 steps for member 1; step 17 is member 2.
        Some(FaultPlan::nan_loss_at_step(17)),
    );
    let store = FsStore::open(&dir).unwrap();
    method.run_resumable(&dying, &store).unwrap_err();
    drop(store);

    let store = FsStore::open(&dir).unwrap();
    let resumed = method.run_resumable(&env, &store).unwrap();
    let x = env.data.test.features();
    assert_eq!(
        full.model.soft_targets(x).unwrap().data(),
        resumed.model.soft_targets(x).unwrap().data()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
