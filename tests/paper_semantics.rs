//! Integration tests pinning the *paper's* semantics: the equations of
//! §III–IV evaluated against hand-computed cases and cross-checked between
//! modules.

use edde::core::diversity::{ensemble_diversity, pairwise_diversity, pairwise_similarity};
use edde::core::transfer::transfer_partial;
use edde::nn::loss::{CrossEntropy, DiversityDriven};
use edde::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Eq. 2 with hand-computed values: Div = √2/2 · mean ‖p − q‖₂.
#[test]
fn eq2_diversity_hand_computed() {
    let p = Tensor::from_vec(vec![1.0, 0.0, 0.5, 0.5], &[2, 2]).unwrap();
    let q = Tensor::from_vec(vec![0.0, 1.0, 0.5, 0.5], &[2, 2]).unwrap();
    // sample 1: ‖(1,0)−(0,1)‖ = √2, sample 2: 0 → mean √2/2 → Div = 0.5
    let div = pairwise_diversity(&p, &q).unwrap();
    assert!((div - 0.5).abs() < 1e-6);
    // Eq. 3
    assert!((pairwise_similarity(&p, &q).unwrap() - 0.5).abs() < 1e-6);
}

/// Eq. 4–6: Div and Sim stay in [0, 1] for any pair of probability rows.
#[test]
fn eq4_to_6_bounds_on_probability_vectors() {
    let mut rng = StdRng::seed_from_u64(0);
    for _ in 0..50 {
        let a = edde::tensor::ops::softmax_rows(&edde::tensor::rng::rand_uniform(
            &[8, 5],
            -4.0,
            4.0,
            &mut rng,
        ))
        .unwrap();
        let b = edde::tensor::ops::softmax_rows(&edde::tensor::rng::rand_uniform(
            &[8, 5],
            -4.0,
            4.0,
            &mut rng,
        ))
        .unwrap();
        let d = pairwise_diversity(&a, &b).unwrap();
        assert!((0.0..=1.0).contains(&d), "Div out of range: {d}");
    }
}

/// Eq. 7 with three members, hand-computed.
#[test]
fn eq7_ensemble_diversity_hand_computed() {
    let one_hot = |c: usize| {
        let mut v = vec![0.0f32; 3];
        v[c] = 1.0;
        Tensor::from_vec(v, &[1, 3]).unwrap()
    };
    let members = vec![one_hot(0), one_hot(1), one_hot(2)];
    // every pair is at max distance -> Div_H = 1
    let d = ensemble_diversity(&members).unwrap();
    assert!((d - 1.0).abs() < 1e-6);
}

/// Eq. 10 at γ = 0 coincides with the categorical cross-entropy the
/// baselines use — the "EDDE (normal loss)" ablation is exactly CE.
#[test]
fn eq10_reduces_to_ce_at_gamma_zero() {
    let mut rng = StdRng::seed_from_u64(1);
    let logits = edde::tensor::rng::rand_uniform(&[6, 4], -2.0, 2.0, &mut rng);
    let labels = [0usize, 1, 2, 3, 0, 1];
    let weights = [0.5f32, 1.5, 1.0, 2.0, 0.25, 0.75];
    let q = edde::tensor::ops::softmax_rows(&edde::tensor::rng::rand_uniform(
        &[6, 4],
        -1.0,
        1.0,
        &mut rng,
    ))
    .unwrap();
    let ce = CrossEntropy::new()
        .compute(&logits, &labels, Some(&weights))
        .unwrap();
    let dd = DiversityDriven::new(0.0)
        .compute(&logits, &labels, Some(&weights), &q)
        .unwrap();
    assert!((ce.loss - dd.loss).abs() < 1e-6);
    for (a, b) in ce
        .grad_logits
        .data()
        .iter()
        .zip(dd.grad_logits.data().iter())
    {
        assert!((a - b).abs() < 1e-6);
    }
}

/// Eq. 10's diversity term is a *reward*: moving the prediction away from
/// the ensemble target lowers the loss, holding CE roughly constant.
#[test]
fn eq10_rewards_disagreement() {
    let labels = [0usize];
    // two logits with identical CE on class 0 (same p_y) but different
    // distances to the ensemble target
    let logits = Tensor::from_vec(vec![2.0, 1.0, 1.0], &[1, 3]).unwrap();
    let q_near = edde::tensor::ops::softmax_rows(&logits).unwrap();
    let q_far = Tensor::from_vec(vec![0.0, 1.0, 0.0], &[1, 3]).unwrap();
    let dd = DiversityDriven::new(0.5);
    let near = dd.compute(&logits, &labels, None, &q_near).unwrap();
    let far = dd.compute(&logits, &labels, None, &q_far).unwrap();
    assert!(far.loss < near.loss);
}

/// §IV-B: β-prefix transfer preserves teacher behaviour monotonically — at
/// β = 1 the student *is* the teacher, and the functional distance to the
/// teacher grows as β shrinks.
#[test]
fn beta_transfer_distance_is_monotone() {
    let mut rng = StdRng::seed_from_u64(2);
    let cfg = ResNetConfig {
        depth: 8,
        width: 4,
        in_channels: 3,
        num_classes: 5,
    };
    let teacher = resnet(&cfg, &mut rng).unwrap();
    let x = edde::tensor::rng::rand_uniform(&[4, 3, 8, 8], -1.0, 1.0, &mut rng);
    let teacher_out = teacher.predict_proba(&x).unwrap();
    let mut last_dist = -1.0f32;
    for beta in [1.0f32, 0.6, 0.2] {
        let mut rng_s = StdRng::seed_from_u64(3); // same student init each time
        let mut student = resnet(&cfg, &mut rng_s).unwrap();
        transfer_partial(&teacher, &mut student, beta).unwrap();
        let out = student.predict_proba(&x).unwrap();
        let dist: f32 = out
            .data()
            .iter()
            .zip(teacher_out.data().iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            dist >= last_dist - 1e-6,
            "distance should grow as beta shrinks: {dist} after {last_dist}"
        );
        last_dist = dist;
        if beta == 1.0 {
            assert!(
                dist < 1e-5,
                "beta=1 must replicate the teacher, dist={dist}"
            );
        }
    }
}

/// Algorithm 1's weight update (Eq. 14) as implemented by the EDDE method:
/// after a round, weights are positive and average to one, and the
/// misclassified-sample weights are the large ones.
#[test]
fn eq14_weight_shape_via_public_behaviour() {
    // Verified indirectly: EDDE with boosting trains and its later members
    // focus on hard samples. Here we check the invariant the trainer
    // requires — weighted and unweighted training both succeed and produce
    // valid ensembles (the weight vector internals are private by design).
    // Weight updates only fire on *misclassified* training samples
    // (Eq. 14), so the task must be hard enough that member 2 leaves some
    // train errors — hence the large spread.
    let data = gaussian_blobs(
        &GaussianBlobsConfig {
            classes: 3,
            dim: 6,
            train_per_class: 25,
            test_per_class: 10,
            spread: 1.8,
        },
        9,
    );
    let factory: ModelFactory = std::sync::Arc::new(|r| Ok(mlp(&[6, 16, 3], 0.0, r)));
    let env = ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        },
        0.1,
        9,
    );
    let boosted = Edde::new(3, 5, 3, 0.1, 0.7).run(&env).unwrap();
    let mut unboosted_cfg = Edde::new(3, 5, 3, 0.1, 0.7);
    unboosted_cfg.boosting = false;
    let unboosted = unboosted_cfg.run(&env).unwrap();
    assert_eq!(boosted.model.len(), 3);
    assert_eq!(unboosted.model.len(), 3);
    // boosting changes the optimization path => different member functions
    let bm = boosted.model.clone();
    let um = unboosted.model.clone();
    let pb = bm.soft_targets(env.data.test.features()).unwrap();
    let pu = um.soft_targets(env.data.test.features()).unwrap();
    assert_ne!(pb.data(), pu.data());
}

/// Eq. 16: the ensemble soft target is the α-weighted convex combination of
/// member soft targets.
#[test]
fn eq16_weighted_soft_vote_is_convex() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut model = EnsembleModel::new();
    model.push(mlp(&[3, 6, 2], 0.0, &mut rng), 0.3, "a");
    model.push(mlp(&[3, 6, 2], 0.0, &mut rng), 1.7, "b");
    let x = edde::tensor::rng::rand_uniform(&[5, 3], -1.0, 1.0, &mut rng);
    let mix = model.soft_targets(&x).unwrap();
    let members = model.member_soft_targets(&x).unwrap();
    for i in 0..mix.len() {
        let expect = (0.3 * members[0].data()[i] + 1.7 * members[1].data()[i]) / 2.0;
        assert!((mix.data()[i] - expect).abs() < 1e-5);
    }
}
