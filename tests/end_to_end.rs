//! End-to-end integration tests spanning all four crates: data generation →
//! model construction → ensemble training → evaluation. Budgets are tiny;
//! these verify plumbing and invariants, not accuracy targets.

use edde::prelude::*;
use std::sync::Arc;

fn image_env(seed: u64) -> ExperimentEnv {
    let data = SynthImages::generate(
        &SynthImagesConfig {
            classes: 4,
            size: 8,
            channels: 3,
            train_per_class: 12,
            test_per_class: 6,
            noise: 0.3,
            jitter: 1,
            families: Some(2),
        },
        seed,
    );
    let factory: ModelFactory = Arc::new(|rng| {
        Ok(resnet(
            &ResNetConfig {
                depth: 8,
                width: 4,
                in_channels: 3,
                num_classes: 4,
            },
            rng,
        )?)
    });
    ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 16,
            ..Trainer::default()
        },
        0.1,
        seed,
    )
}

fn text_env(seed: u64) -> ExperimentEnv {
    let data = SynthText::generate(&SynthTextConfig::tiny(), seed);
    let factory: ModelFactory = Arc::new(|rng| Ok(textcnn(&TextCnnConfig::small(60, 2), rng)?));
    ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        },
        0.1,
        seed,
    )
}

#[test]
fn every_method_runs_on_the_image_task() {
    let env = image_env(1);
    let methods: Vec<Box<dyn EnsembleMethod>> = vec![
        Box::new(SingleModel::new(2)),
        Box::new(Bans::new(2, 2)),
        Box::new(Bagging::new(2, 2)),
        Box::new(AdaBoostM1::new(2, 2)),
        Box::new(AdaBoostNc::new(2, 2)),
        Box::new(Snapshot::new(2, 2)),
        Box::new(Edde::new(2, 2, 2, 0.1, 0.7)),
    ];
    for method in &methods {
        let run = method.run(&env).unwrap_or_else(|e| {
            panic!("{} failed: {e}", method.name());
        });
        // every trace is ordered in epochs and members
        for w in run.trace.windows(2) {
            assert!(w[0].cumulative_epochs < w[1].cumulative_epochs);
            assert!(w[0].members <= w[1].members);
        }
        // probabilities are valid
        let probs = run.model.soft_targets(env.data.test.features()).unwrap();
        assert!(probs.all_finite());
        for i in 0..env.data.test.len() {
            let s: f32 = probs.row(i).unwrap().iter().sum();
            assert!(
                (s - 1.0).abs() < 1e-4,
                "{}: row {i} sums to {s}",
                method.name()
            );
        }
        // the summary is internally consistent
        let s = summarize(method.name(), &run, &env.data.test).unwrap();
        assert!((0.0..=1.0).contains(&s.ensemble_accuracy));
        assert!((0.0..=1.0).contains(&s.average_accuracy));
    }
}

#[test]
fn every_method_runs_on_the_text_task() {
    let env = text_env(2);
    let methods: Vec<Box<dyn EnsembleMethod>> = vec![
        Box::new(SingleModel::new(2)),
        Box::new(Bagging::new(2, 2)),
        Box::new(Snapshot::new(2, 2)),
        Box::new(Edde::new(2, 2, 2, 0.1, 0.9)),
    ];
    for method in &methods {
        let run = method.run(&env).unwrap_or_else(|e| {
            panic!("{} failed on text: {e}", method.name());
        });
        assert!(!run.model.is_empty());
        assert!(run.trace.last().unwrap().test_accuracy > 0.3); // above chance-ish
    }
}

#[test]
fn methods_are_deterministic_under_the_env_seed() {
    let env = image_env(3);
    let a = Edde::new(2, 2, 1, 0.1, 0.7).run(&env).unwrap();
    let b = Edde::new(2, 2, 1, 0.1, 0.7).run(&env).unwrap();
    assert_eq!(
        a.trace.last().unwrap().test_accuracy,
        b.trace.last().unwrap().test_accuracy
    );
    // a different env seed changes the outcome (data and init both move)
    let env2 = image_env(4);
    let c = Edde::new(2, 2, 1, 0.1, 0.7).run(&env2).unwrap();
    // not asserting inequality of accuracy (could coincide); assert the
    // underlying member predictions differ
    let am = a.model.clone();
    let cm = c.model.clone();
    let pa = am.soft_targets(env.data.test.features()).unwrap();
    let pc = cm.soft_targets(env.data.test.features()).unwrap();
    assert_ne!(pa.data(), pc.data());
}

#[test]
fn edde_trace_budget_accounting_matches_config() {
    let env = image_env(5);
    let method = Edde::new(3, 4, 2, 0.1, 0.7);
    let run = method.run(&env).unwrap();
    assert_eq!(run.total_epochs, 4 + 2 * 2);
    assert_eq!(run.trace.len(), 3);
    assert_eq!(run.trace[0].cumulative_epochs, 4);
    assert_eq!(run.trace[1].cumulative_epochs, 6);
    assert_eq!(run.trace[2].cumulative_epochs, 8);
}

#[test]
fn checkpoint_round_trip_through_ensemble_member() {
    let env = image_env(6);
    let mut run = SingleModel::new(1).run(&env).unwrap();
    let member = &mut run.model.members_mut()[0];
    let bytes = edde::nn::checkpoint::to_bytes(&member.network);
    let mut rng = env.rng(99);
    let mut fresh = (env.factory)(&mut rng).unwrap();
    edde::nn::checkpoint::from_bytes(&mut fresh, bytes).unwrap();
    let x = env.data.test.features();
    let a = member.network.predict_proba(x).unwrap();
    let b = fresh.predict_proba(x).unwrap();
    assert_eq!(a.data(), b.data());
}

#[test]
#[allow(clippy::needless_range_loop)]
fn diversity_pipeline_spans_crates() {
    let env = image_env(7);
    let run = Bagging::new(3, 2).run(&env).unwrap();
    let probs = run
        .model
        .member_soft_targets(env.data.test.features())
        .unwrap();
    let matrix = similarity_matrix(&probs).unwrap();
    assert_eq!(matrix.len(), 3);
    let div = ensemble_diversity(&probs).unwrap();
    assert!((0.0..=1.0).contains(&div));
    // Eq. 3 consistency: mean off-diagonal similarity = 1 - Eq. 7 diversity
    let mut off = 0.0f32;
    for i in 0..3 {
        for j in 0..3 {
            if i != j {
                off += matrix[i][j];
            }
        }
    }
    assert!((off / 6.0 - (1.0 - div)).abs() < 1e-5);
}

#[test]
fn bias_variance_runs_on_trained_ensembles() {
    let env = image_env(8);
    let snap = Snapshot::new(2, 2).run(&env).unwrap();
    let bv = bias_variance(&snap.model, &env.data.test).unwrap();
    assert!((0.0..=1.0).contains(&bv.bias));
    assert!((0.0..=1.0).contains(&bv.variance));
}
