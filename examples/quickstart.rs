//! Quickstart: train an EDDE ensemble on a synthetic image-classification
//! task and compare it with a single model at the same budget.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use edde::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Data: a small CIFAR-like synthetic task (8 classes in 4 families,
    //    so some class pairs are genuinely confusable).
    let data = SynthImages::generate(
        &SynthImagesConfig {
            classes: 8,
            size: 12,
            channels: 3,
            train_per_class: 30,
            test_per_class: 15,
            noise: 0.25,
            jitter: 1,
            families: Some(4),
        },
        7,
    );
    println!(
        "data: {} train / {} test samples, {} classes",
        data.train.len(),
        data.test.len(),
        data.train.num_classes()
    );

    // 2. Architecture: one factory shared by every method, as in the paper.
    let factory: ModelFactory = Arc::new(|rng| {
        Ok(resnet(
            &ResNetConfig {
                depth: 8,
                width: 8,
                in_channels: 3,
                num_classes: 8,
            },
            rng,
        )?)
    });

    // 3. Environment: data + factory + trainer + seed.
    let env = ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 32,
            ..Trainer::default()
        },
        0.1,
        7,
    );

    // 4. Train: a single model and an EDDE ensemble with the same budget
    //    (36 epochs each).
    println!("\ntraining a single model (36 epochs)...");
    let single = SingleModel::new(36).run(&env).expect("single model");

    println!("training EDDE: 4 members, gamma = 0.1, beta = 0.7 (36 epochs)...");
    let edde = Edde::new(4, 12, 8, 0.1, 0.7).run(&env).expect("EDDE");

    // 5. Compare.
    let mut rows = Vec::new();
    for (name, run) in [("Single Model", single), ("EDDE", edde)] {
        rows.push(summarize(name, &run, &env.data.test).expect("summary"));
    }
    println!("\n{}", summary_table(&rows));
    let gain = rows[1].ensemble_accuracy - rows[0].ensemble_accuracy;
    println!("EDDE vs single model: {:+.2} points", 100.0 * gain);
}
