//! Measuring ensemble diversity with the paper's soft-target measure
//! (Eq. 2/3/7): train Snapshot and EDDE ensembles and print their pairwise
//! member-similarity matrices — a miniature of Figure 8.
//!
//! ```sh
//! cargo run --release --example diversity_probe
//! ```

use edde::prelude::*;
use std::sync::Arc;

fn main() {
    let data = SynthImages::generate(
        &SynthImagesConfig {
            classes: 10,
            size: 12,
            channels: 3,
            train_per_class: 25,
            test_per_class: 12,
            noise: 0.4,
            jitter: 2,
            families: Some(5),
        },
        23,
    );
    let factory: ModelFactory = Arc::new(|rng| {
        Ok(resnet(
            &ResNetConfig {
                depth: 8,
                width: 8,
                in_channels: 3,
                num_classes: 10,
            },
            rng,
        )?)
    });
    let env = ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 32,
            ..Trainer::default()
        },
        0.1,
        23,
    );

    let methods: Vec<Box<dyn EnsembleMethod>> = vec![
        Box::new(Snapshot::new(4, 8)),
        Box::new(Edde::new(4, 8, 6, 0.1, 0.7)),
    ];
    for method in &methods {
        println!("training {} ...", method.name());
        let run = method.run(&env).expect("method run");
        let probs = run
            .model
            .member_soft_targets(env.data.test.features())
            .expect("soft targets");
        let matrix = similarity_matrix(&probs).expect("similarity");
        println!("\n{}", matrix_table(&matrix, &method.name()));
        let div = ensemble_diversity(&probs).expect("diversity");
        let acc = run.model.accuracy(&env.data.test).expect("accuracy");
        println!(
            "Eq. 7 ensemble diversity: {div:.4}   ensemble accuracy: {}\n",
            pct(acc)
        );
    }
    println!(
        "expected shape (paper Fig. 8): EDDE's off-diagonal similarities sit below Snapshot's."
    );
}
