//! The NLP scenario: Text-CNN ensembles on a synthetic sentiment task
//! (the IMDB stand-in), with EDDE running at a *smaller* budget than the
//! baselines — the paper's "EDDE only needs half the time" experiment.
//!
//! ```sh
//! cargo run --release --example text_ensemble
//! ```

use edde::prelude::*;
use std::sync::Arc;

fn main() {
    let data = SynthText::generate(
        &SynthTextConfig {
            classes: 2,
            vocab: 300,
            max_len: 30,
            min_len: 15,
            markers_per_class: 6,
            marker_prob: 0.08,
            train_per_class: 250,
            test_per_class: 100,
        },
        13,
    );
    let factory: ModelFactory = Arc::new(|rng| {
        Ok(textcnn(
            &TextCnnConfig {
                vocab: 300,
                embed_dim: 16,
                kernel_sizes: vec![3, 4, 5],
                filters: 12,
                dropout: 0.3,
                num_classes: 2,
            },
            rng,
        )?)
    });
    let env = ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 64,
            ..Trainer::default()
        },
        0.1,
        13,
    );

    // Baselines at 4 x 8 = 32 epochs; EDDE at 8 + 3 x 4 = 20 epochs. The
    // paper transfers all Text-CNN convolution layers, so beta here covers
    // the embedding + convolutions (the head is re-initialized).
    let methods: Vec<Box<dyn EnsembleMethod>> = vec![
        Box::new(SingleModel::new(32)),
        Box::new(Bagging::new(4, 8)),
        Box::new(Snapshot::new(4, 8)),
        Box::new(Edde::new(4, 8, 4, 0.1, 0.95)),
    ];
    let mut rows = Vec::new();
    for method in &methods {
        println!("training {} ...", method.name());
        let run = method.run(&env).expect("method run");
        rows.push(summarize(method.name(), &run, &env.data.test).expect("summary"));
    }
    println!("\n{}", summary_table(&rows));
    println!(
        "note: EDDE used {} epochs vs the baselines' 32 — the paper's efficiency claim.",
        rows.last().unwrap().total_epochs
    );
}
