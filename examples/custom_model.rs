//! Using EDDE with a custom architecture: the `EnsembleMethod`s work with
//! any `Network`, so downstream users can ensemble their own models. This
//! example builds a small Tanh CNN by hand from the layer toolbox and runs
//! EDDE and NCL (the negative-correlation extension) over it.
//!
//! ```sh
//! cargo run --release --example custom_model
//! ```

use edde::nn::layer::Sequential;
use edde::nn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Tanh};
use edde::prelude::*;
use std::sync::Arc;

fn main() {
    let data = SynthImages::generate(
        &SynthImagesConfig {
            classes: 6,
            size: 12,
            channels: 3,
            train_per_class: 25,
            test_per_class: 12,
            noise: 0.35,
            jitter: 1,
            families: Some(3),
        },
        29,
    );

    // A hand-rolled LeNet-flavoured model: conv -> tanh -> pool -> conv ->
    // tanh -> pool -> flatten -> dense. Any `Layer` composition works.
    let factory: ModelFactory = Arc::new(|rng| {
        let seq = Sequential::new()
            .with("conv1", Box::new(Conv2d::new(3, 8, 3, 1, 1, true, rng)))
            .with("act1", Box::new(Tanh::new()))
            .with("pool1", Box::new(MaxPool2d::new(2, 2)))
            .with("conv2", Box::new(Conv2d::new(8, 16, 3, 1, 1, true, rng)))
            .with("act2", Box::new(Tanh::new()))
            .with("pool2", Box::new(MaxPool2d::new(2, 2)))
            .with("flatten", Box::new(Flatten::new()))
            .with("fc", Box::new(Dense::new(16 * 3 * 3, 6, rng)));
        Ok(Network::new(Box::new(seq), "lenet-tanh", 6))
    });

    let env = ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 25,
            ..Trainer::default()
        },
        0.05, // tanh saturates; gentler rate than the ReLU presets
        29,
    );

    let methods: Vec<Box<dyn EnsembleMethod>> = vec![
        Box::new(SingleModel::new(24)),
        Box::new(Edde::new(3, 8, 8, 0.1, 0.7)),
        Box::new(Ncl::new(3, 2, 4, 0.2)),
    ];
    let mut rows = Vec::new();
    for method in &methods {
        println!("training {} ...", method.name());
        let run = method.run(&env).expect("method run");
        rows.push(summarize(method.name(), &run, &env.data.test).expect("summary"));
    }
    println!("\n{}", summary_table(&rows));
    println!("any Layer composition can be ensembled — see edde::nn::layer::Layer.");
}
