//! A walkthrough of EDDE's adaptive β selection (§IV-B, Fig. 4/5): split
//! the training set into folds, train a teacher on folds 1..n−1, and for
//! each β fine-tune a β-transferred student on folds 1..n−2 — then compare
//! its accuracy on the fold the teacher saw against the fold nobody saw.
//! When the two match, the transferred knowledge is generic, not memorized.
//!
//! ```sh
//! cargo run --release --example beta_tuning
//! ```

use edde::prelude::*;
use std::sync::Arc;

fn main() {
    let data = SynthImages::generate(
        &SynthImagesConfig {
            classes: 10,
            size: 12,
            channels: 3,
            train_per_class: 36,
            test_per_class: 10,
            noise: 0.35,
            jitter: 2,
            families: Some(5),
        },
        17,
    );
    let factory: ModelFactory = Arc::new(|rng| {
        Ok(resnet(
            &ResNetConfig {
                depth: 8,
                width: 8,
                in_channels: 3,
                num_classes: 10,
            },
            rng,
        )?)
    });
    let env = ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 32,
            ..Trainer::default()
        },
        0.1,
        17,
    );

    // Six folds, as in the paper's CIFAR-100 experiment.
    let mut rng = env.rng(1);
    let kfold = KFold::new(env.data.train.len(), 6, &mut rng);
    let split = kfold.beta_split(&env.data.train).expect("beta split");
    println!(
        "teacher trains on {} samples, student on {}, probes: {} seen / {} unseen",
        split.teacher_train.len(),
        split.student_train.len(),
        split.seen_fold.len(),
        split.unseen_fold.len()
    );

    let config = BetaProbeConfig {
        teacher_epochs: 16,
        probe_epochs: 5,
        lr: 0.05,
        betas: vec![1.0, 0.8, 0.6, 0.4, 0.2],
        gap_threshold: 0.02,
    };
    println!("running the beta sweep (teacher 16 epochs, 5 probe epochs per beta)...\n");
    let factory2 = env.factory.clone();
    let points = beta_probe(
        &move |rng| (factory2)(rng),
        &split,
        &env.trainer,
        &config,
        &mut rng,
    )
    .expect("beta probe");

    let mut table = Table::new(&["beta", "seen fold acc", "unseen fold acc", "gap"]);
    for p in &points {
        table.add_row(&[
            format!("{:.1}", p.beta),
            format!("{:.4}", p.seen_acc),
            format!("{:.4}", p.unseen_acc),
            format!("{:+.4}", p.seen_acc - p.unseen_acc),
        ]);
    }
    println!("{}", table.render());

    let beta = select_beta(&points, config.gap_threshold).expect("select beta");
    println!("selected beta = {beta:.1} — use it as Edde::new(.., .., .., gamma, {beta:.1})");
}
