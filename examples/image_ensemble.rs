//! The CV scenario of the paper in miniature: every ensemble method on one
//! synthetic image dataset with one shared ResNet architecture, at an equal
//! epoch budget — a small-scale Table II.
//!
//! ```sh
//! cargo run --release --example image_ensemble
//! ```

use edde::prelude::*;
use std::sync::Arc;

fn main() {
    let data = SynthImages::generate(
        &SynthImagesConfig {
            classes: 10,
            size: 12,
            channels: 3,
            train_per_class: 25,
            test_per_class: 12,
            noise: 0.4,
            jitter: 2,
            families: Some(5),
        },
        11,
    );
    let factory: ModelFactory = Arc::new(|rng| {
        Ok(resnet(
            &ResNetConfig {
                depth: 8,
                width: 8,
                in_channels: 3,
                num_classes: 10,
            },
            rng,
        )?)
    });
    let env = ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 32,
            ..Trainer::default()
        },
        0.1,
        11,
    );

    // Equal budget per method: 3 members x 10 epochs (EDDE: 10 + 2x10).
    let methods: Vec<Box<dyn EnsembleMethod>> = vec![
        Box::new(SingleModel::new(30)),
        Box::new(Bans::new(3, 10)),
        Box::new(Bagging::new(3, 10)),
        Box::new(AdaBoostM1::new(3, 10)),
        Box::new(AdaBoostNc::new(3, 10)),
        Box::new(Snapshot::new(3, 10)),
        Box::new(Edde::new(3, 10, 10, 0.1, 0.7)),
    ];

    let mut rows = Vec::new();
    for method in &methods {
        println!("training {} ...", method.name());
        let run = method.run(&env).expect("method run");
        rows.push(summarize(method.name(), &run, &env.data.test).expect("summary"));
    }
    println!("\n{}", summary_table(&rows));

    let best = rows
        .iter()
        .max_by(|a, b| {
            a.ensemble_accuracy
                .partial_cmp(&b.ensemble_accuracy)
                .unwrap()
        })
        .expect("non-empty");
    println!("best method at this budget: {}", best.name);
}
